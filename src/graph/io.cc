#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "graph/builder.h"

namespace hsgf::graph {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

void WriteGraph(const HetGraph& graph, std::ostream& out) {
  out << "# hsgf-graph v1\n";
  out << "labels";
  for (const std::string& name : graph.label_names()) out << ' ' << name;
  out << '\n';
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << "node " << v << ' ' << static_cast<int>(graph.label(v)) << '\n';
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId u : graph.neighbors(v)) {
      if (v < u) out << "edge " << v << ' ' << u << '\n';
    }
  }
}

std::optional<HetGraph> ReadGraph(std::istream& in, std::string* error) {
  std::vector<std::string> label_names;
  std::vector<Label> node_labels;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string keyword;
    tokens >> keyword;
    auto syntax_error = [&](const std::string& what) {
      Fail(error, "line " + std::to_string(line_number) + ": " + what);
      return std::nullopt;
    };
    if (keyword == "labels") {
      std::string name;
      while (tokens >> name) label_names.push_back(name);
      if (label_names.empty()) return syntax_error("empty label list");
    } else if (keyword == "node") {
      int64_t id = -1;
      int label = -1;
      if (!(tokens >> id >> label)) return syntax_error("malformed node line");
      if (id != static_cast<int64_t>(node_labels.size())) {
        return syntax_error("node ids must be dense and in order");
      }
      if (label < 0 || label >= static_cast<int>(label_names.size())) {
        return syntax_error("label index out of range");
      }
      node_labels.push_back(static_cast<Label>(label));
    } else if (keyword == "edge") {
      int64_t u = -1;
      int64_t v = -1;
      if (!(tokens >> u >> v)) return syntax_error("malformed edge line");
      if (u < 0 || v < 0 || u >= static_cast<int64_t>(node_labels.size()) ||
          v >= static_cast<int64_t>(node_labels.size())) {
        return syntax_error("edge endpoint out of range");
      }
      if (u == v) return syntax_error("self loops are not allowed");
      edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    } else {
      return syntax_error("unknown keyword '" + keyword + "'");
    }
  }
  if (label_names.empty()) {
    Fail(error, "missing 'labels' line");
    return std::nullopt;
  }
  return MakeGraph(std::move(label_names), node_labels, edges);
}

bool WriteGraphToFile(const HetGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteGraph(graph, out);
  return static_cast<bool>(out);
}

std::optional<HetGraph> ReadGraphFromFile(const std::string& path,
                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    Fail(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadGraph(in, error);
}

}  // namespace hsgf::graph
