#include "graph/components.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "graph/builder.h"

namespace hsgf::graph {

ComponentInfo ConnectedComponents(const HetGraph& graph) {
  ComponentInfo info;
  info.component.assign(graph.num_nodes(), -1);
  std::deque<NodeId> frontier;
  for (NodeId start = 0; start < graph.num_nodes(); ++start) {
    if (info.component[start] != -1) continue;
    const int id = info.num_components++;
    info.sizes.push_back(0);
    info.component[start] = id;
    frontier.push_back(start);
    while (!frontier.empty()) {
      NodeId v = frontier.front();
      frontier.pop_front();
      ++info.sizes[id];
      for (NodeId u : graph.neighbors(v)) {
        if (info.component[u] == -1) {
          info.component[u] = id;
          frontier.push_back(u);
        }
      }
    }
  }
  return info;
}

std::vector<NodeId> BfsBall(const HetGraph& graph,
                            const std::vector<NodeId>& seeds,
                            int max_distance) {
  assert(max_distance >= 0);
  std::vector<int> distance(graph.num_nodes(), -1);
  std::deque<NodeId> frontier;
  for (NodeId seed : seeds) {
    if (distance[seed] == -1) {
      distance[seed] = 0;
      frontier.push_back(seed);
    }
  }
  std::vector<NodeId> ball;
  while (!frontier.empty()) {
    NodeId v = frontier.front();
    frontier.pop_front();
    ball.push_back(v);
    if (distance[v] == max_distance) continue;
    for (NodeId u : graph.neighbors(v)) {
      if (distance[u] == -1) {
        distance[u] = distance[v] + 1;
        frontier.push_back(u);
      }
    }
  }
  std::sort(ball.begin(), ball.end());
  return ball;
}

InducedSubgraph ExtractInducedSubgraph(const HetGraph& graph,
                                       std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  InducedSubgraph result;
  result.old_to_new.assign(graph.num_nodes(), -1);
  result.new_to_old = nodes;
  for (size_t i = 0; i < nodes.size(); ++i) {
    result.old_to_new[nodes[i]] = static_cast<NodeId>(i);
  }

  GraphBuilder builder(graph.label_names());
  for (NodeId old_id : nodes) builder.AddNode(graph.label(old_id));
  for (NodeId old_id : nodes) {
    NodeId new_u = result.old_to_new[old_id];
    for (NodeId old_v : graph.neighbors(old_id)) {
      NodeId new_v = result.old_to_new[old_v];
      if (new_v != -1 && new_u < new_v) builder.AddEdge(new_u, new_v);
    }
  }
  result.graph = std::move(builder).Build();
  return result;
}

}  // namespace hsgf::graph
