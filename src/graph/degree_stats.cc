#include "graph/degree_stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hsgf::graph {

std::vector<int> SortedDegrees(const HetGraph& graph) {
  std::vector<int> degrees(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) degrees[v] = graph.degree(v);
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

int DegreePercentile(const HetGraph& graph, double percentile) {
  return DegreePercentileOf(
      graph.num_nodes(), [&graph](NodeId v) { return graph.degree(v); },
      percentile);
}

std::vector<int64_t> DegreeHistogram(const HetGraph& graph) {
  int max_degree = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    max_degree = std::max(max_degree, graph.degree(v));
  }
  std::vector<int64_t> histogram(max_degree + 1, 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    ++histogram[graph.degree(v)];
  }
  return histogram;
}

DegreeSummary SummarizeDegrees(const HetGraph& graph) {
  DegreeSummary summary;
  if (graph.num_nodes() == 0) return summary;
  std::vector<int> degrees = SortedDegrees(graph);
  summary.min = degrees.front();
  summary.max = degrees.back();
  int64_t total = 0;
  for (int d : degrees) total += d;
  summary.mean = static_cast<double>(total) / degrees.size();
  summary.median = degrees[degrees.size() / 2];
  summary.p90 = degrees[static_cast<size_t>(0.90 * (degrees.size() - 1))];
  summary.p99 = degrees[static_cast<size_t>(0.99 * (degrees.size() - 1))];
  return summary;
}

}  // namespace hsgf::graph
