#ifndef HSGF_GRAPH_DEGREE_STATS_H_
#define HSGF_GRAPH_DEGREE_STATS_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/het_graph.h"

namespace hsgf::graph {

// Degree-distribution summaries. The maximum-degree heuristic (paper §3.2,
// evaluated in Table 2) is parameterized by a degree *percentile*: dmax is
// set so that the given percentage of nodes have degree <= dmax.

// All node degrees, ascending.
std::vector<int> SortedDegrees(const HetGraph& graph);

// The smallest degree d such that at least `percentile` (in [0, 100]) percent
// of nodes have degree <= d. percentile == 100 returns the maximum degree.
int DegreePercentile(const HetGraph& graph, double percentile);

// The same percentile over an arbitrary degree accessor — the shared
// implementation DegreePercentile wraps. Kept generic so graph storages that
// do not expose CSR arrays (gstore::CompressedGraph) resolve dmax with
// bit-identical results.
template <typename DegreeFn>
int DegreePercentileOf(NodeId num_nodes, DegreeFn&& degree_of,
                       double percentile) {
  assert(percentile >= 0.0 && percentile <= 100.0);
  if (num_nodes <= 0) return 0;
  std::vector<int> degrees(static_cast<size_t>(num_nodes));
  for (NodeId v = 0; v < num_nodes; ++v) {
    degrees[static_cast<size_t>(v)] = degree_of(v);
  }
  std::sort(degrees.begin(), degrees.end());
  // Index of the last node inside the percentile (nearest-rank method).
  size_t rank = static_cast<size_t>(
      std::ceil(percentile / 100.0 * static_cast<double>(degrees.size())));
  if (rank == 0) rank = 1;
  return degrees[rank - 1];
}

// Histogram of degrees: result[d] = number of nodes with degree d.
std::vector<int64_t> DegreeHistogram(const HetGraph& graph);

struct DegreeSummary {
  int min = 0;
  int max = 0;
  double mean = 0.0;
  int median = 0;
  int p90 = 0;
  int p99 = 0;
};

DegreeSummary SummarizeDegrees(const HetGraph& graph);

}  // namespace hsgf::graph

#endif  // HSGF_GRAPH_DEGREE_STATS_H_
