#ifndef HSGF_GRAPH_DEGREE_STATS_H_
#define HSGF_GRAPH_DEGREE_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/het_graph.h"

namespace hsgf::graph {

// Degree-distribution summaries. The maximum-degree heuristic (paper §3.2,
// evaluated in Table 2) is parameterized by a degree *percentile*: dmax is
// set so that the given percentage of nodes have degree <= dmax.

// All node degrees, ascending.
std::vector<int> SortedDegrees(const HetGraph& graph);

// The smallest degree d such that at least `percentile` (in [0, 100]) percent
// of nodes have degree <= d. percentile == 100 returns the maximum degree.
int DegreePercentile(const HetGraph& graph, double percentile);

// Histogram of degrees: result[d] = number of nodes with degree d.
std::vector<int64_t> DegreeHistogram(const HetGraph& graph);

struct DegreeSummary {
  int min = 0;
  int max = 0;
  double mean = 0.0;
  int median = 0;
  int p90 = 0;
  int p99 = 0;
};

DegreeSummary SummarizeDegrees(const HetGraph& graph);

}  // namespace hsgf::graph

#endif  // HSGF_GRAPH_DEGREE_STATS_H_
