#ifndef HSGF_GRAPH_BUILDER_H_
#define HSGF_GRAPH_BUILDER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/het_graph.h"

namespace hsgf::graph {

// Mutable construction companion for HetGraph.
//
// Usage:
//   GraphBuilder builder({"author", "paper"});
//   NodeId a = builder.AddNode(0);
//   NodeId p = builder.AddNode(1);
//   builder.AddEdge(a, p);
//   HetGraph graph = std::move(builder).Build();
//
// Self loops are rejected; duplicate edges are deduplicated at Build() time.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::vector<std::string> label_names);

  int num_labels() const { return static_cast<int>(label_names_.size()); }
  NodeId num_nodes() const { return static_cast<NodeId>(labels_.size()); }
  int64_t num_edge_entries() const {
    return static_cast<int64_t>(edges_.size());
  }

  // Adds a node with the given label and returns its id (ids are dense and
  // assigned in insertion order).
  NodeId AddNode(Label label);

  // Adds `count` nodes with the given label; returns the first id.
  NodeId AddNodes(Label label, int count);

  // Records an undirected edge. Self loops (u == v) are ignored and counted
  // in dropped_self_loops(). Duplicates are allowed here and removed at
  // Build() time.
  void AddEdge(NodeId u, NodeId v);

  int64_t dropped_self_loops() const { return dropped_self_loops_; }

  // Finalizes into an immutable CSR graph. The builder is consumed.
  HetGraph Build() &&;

 private:
  std::vector<std::string> label_names_;
  std::vector<Label> labels_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  int64_t dropped_self_loops_ = 0;
};

// Convenience: builds a graph directly from a label assignment and an edge
// list (used pervasively in tests).
HetGraph MakeGraph(std::vector<std::string> label_names,
                   const std::vector<Label>& node_labels,
                   const std::vector<std::pair<NodeId, NodeId>>& edges);

}  // namespace hsgf::graph

#endif  // HSGF_GRAPH_BUILDER_H_
