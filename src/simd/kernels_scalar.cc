// Canonical scalar kernel implementations. These are the reference
// semantics: every vector variant must produce bit-identical results
// (simd_test compares them exhaustively over width/alignment/tail cases,
// and census_differential_test compares whole censuses).
#include "simd/kernels.h"

namespace hsgf::simd::internal {

namespace {

// SplitMix64 finalizer — must stay in lockstep with census_internal::Mix
// (core/census.h); simd_test pins the two together.
inline uint64_t Mix1(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

size_t LabelRunLengthScalar(const int32_t* to, const uint8_t* label, size_t n,
                            uint8_t run_label, const int32_t* members,
                            size_t num_members) {
  for (size_t i = 0; i < n; ++i) {
    if (label[i] != run_label) return i;
    const int32_t v = to[i];
    for (size_t m = 0; m < num_members; ++m) {
      if (members[m] == v) return i;
    }
  }
  return n;
}

int CompareBytesScalar(const uint8_t* a, const uint8_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void MixPairScalar(uint64_t* a, uint64_t* b) {
  *a = Mix1(*a);
  *b = Mix1(*b);
}

void MixBatchScalar(const uint64_t* in, uint64_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = Mix1(in[i]);
}

uint64_t DotU8U64Scalar(const uint8_t* counts, const uint64_t* weights,
                        size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<uint64_t>(counts[i]) * weights[i];
  }
  return sum;
}

const KernelTable* ScalarKernels() {
  static const KernelTable table = {
      &LabelRunLengthScalar, &CompareBytesScalar, &MixPairScalar,
      &MixBatchScalar,       &DotU8U64Scalar,
  };
  return &table;
}

}  // namespace hsgf::simd::internal
