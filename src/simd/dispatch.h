#ifndef HSGF_SIMD_DISPATCH_H_
#define HSGF_SIMD_DISPATCH_H_

#include <vector>

namespace hsgf::simd {

// Instruction-set levels the kernel layer can dispatch to. The numeric order
// is meaningful only within one architecture family (kSse2 < kAvx2); kNeon
// is the aarch64 family's single vector level. kScalar is always available
// and is the reference implementation every other level must match
// bit-for-bit (simd_test enforces this on whatever hardware runs it).
enum class IsaLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

const char* IsaName(IsaLevel level);

// Levels this binary can actually run on this CPU, best first, kScalar last.
// Combines compile-time availability (which kernel TUs were built — an
// HSGF_SIMD=OFF build supports only kScalar) with runtime CPU detection
// (AVX2 via cpuid; SSE2 is part of the x86-64 baseline; NEON is part of the
// aarch64 baseline).
const std::vector<IsaLevel>& SupportedIsaLevels();

// The best supported level — what ActiveIsa() is until someone forces it.
IsaLevel DetectedIsa();

// The level the convenience kernel wrappers currently dispatch to.
IsaLevel ActiveIsa();

// Pins dispatch to `level` for this process; returns the level actually in
// effect (the request is ignored if this binary/CPU cannot run it). Intended
// for tests and benchmarks ("force the scalar path"); the store is atomic
// but callers should not flip it while kernels run on other threads. The
// HSGF_SIMD environment variable ("scalar", "sse2", "avx2", "neon") applies
// the same override at first use, before any kernel dispatches.
IsaLevel ForceIsa(IsaLevel level);

}  // namespace hsgf::simd

#endif  // HSGF_SIMD_DISPATCH_H_
