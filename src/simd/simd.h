#ifndef HSGF_SIMD_SIMD_H_
#define HSGF_SIMD_SIMD_H_

// Portable vector wrapper layer. Each kernel translation unit includes this
// header and gets the widest wrapper set its compile flags allow:
//
//   x86-64 baseline TU  -> 128-bit wrappers over SSE2   (HSGF_SIMD_X128)
//   x86-64 -mavx2 TU    -> plus 256-bit wrappers        (HSGF_SIMD_X256)
//   aarch64 TU          -> 128-bit wrappers over NEON   (HSGF_SIMD_X128)
//
// The wrappers are deliberately tiny: unaligned loads/stores, lane splats,
// equality compares, boolean combines, 64-bit lane arithmetic for the
// SplitMix64 finalizer, and first-set-lane extraction. Anything a kernel
// needs beyond this belongs here, not inline in a kernel — this file is the
// only place in the tree allowed to name raw intrinsics outside the lint
// exemption list (tools/hsgf_lint.py, raw-intrinsics rule).
//
// Intentionally header-only and free of project includes: kernel TUs are
// compiled with per-file ISA flags, and pulling project headers into those
// TUs would let AVX2 codegen leak into inline functions shared with
// baseline TUs.

#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define HSGF_SIMD_X128 1
#if defined(__AVX2__)
#define HSGF_SIMD_X256 1
#endif
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define HSGF_SIMD_X128 1
#define HSGF_SIMD_NEON 1
#endif

namespace hsgf::simd {

#if defined(HSGF_SIMD_X128)

#if defined(HSGF_SIMD_NEON)
struct V128 {
  uint8x16_t raw;
};
#else
struct V128 {
  __m128i raw;
};
#endif

inline V128 Load128(const void* p) {
#if defined(HSGF_SIMD_NEON)
  return {vld1q_u8(static_cast<const uint8_t*>(p))};
#else
  return {_mm_loadu_si128(static_cast<const __m128i*>(p))};
#endif
}

inline void Store128(void* p, V128 v) {
#if defined(HSGF_SIMD_NEON)
  vst1q_u8(static_cast<uint8_t*>(p), v.raw);
#else
  _mm_storeu_si128(static_cast<__m128i*>(p), v.raw);
#endif
}

inline V128 Splat8(uint8_t x) {
#if defined(HSGF_SIMD_NEON)
  return {vdupq_n_u8(x)};
#else
  return {_mm_set1_epi8(static_cast<char>(x))};
#endif
}

inline V128 Splat32(int32_t x) {
#if defined(HSGF_SIMD_NEON)
  return {vreinterpretq_u8_s32(vdupq_n_s32(x))};
#else
  return {_mm_set1_epi32(x)};
#endif
}

inline V128 Splat64(uint64_t x) {
#if defined(HSGF_SIMD_NEON)
  return {vreinterpretq_u8_u64(vdupq_n_u64(x))};
#else
  return {_mm_set1_epi64x(static_cast<long long>(x))};
#endif
}

// Lane-wise equality; result lanes are all-ones / all-zeros.
inline V128 CmpEq8(V128 a, V128 b) {
#if defined(HSGF_SIMD_NEON)
  return {vceqq_u8(a.raw, b.raw)};
#else
  return {_mm_cmpeq_epi8(a.raw, b.raw)};
#endif
}

inline V128 CmpEq32(V128 a, V128 b) {
#if defined(HSGF_SIMD_NEON)
  return {vreinterpretq_u8_u32(vceqq_u32(vreinterpretq_u32_u8(a.raw),
                                         vreinterpretq_u32_u8(b.raw)))};
#else
  return {_mm_cmpeq_epi32(a.raw, b.raw)};
#endif
}

inline V128 Or128(V128 a, V128 b) {
#if defined(HSGF_SIMD_NEON)
  return {vorrq_u8(a.raw, b.raw)};
#else
  return {_mm_or_si128(a.raw, b.raw)};
#endif
}

inline V128 Xor128(V128 a, V128 b) {
#if defined(HSGF_SIMD_NEON)
  return {veorq_u8(a.raw, b.raw)};
#else
  return {_mm_xor_si128(a.raw, b.raw)};
#endif
}

inline V128 Not128(V128 a) {
#if defined(HSGF_SIMD_NEON)
  return {vmvnq_u8(a.raw)};
#else
  return {_mm_xor_si128(a.raw, _mm_set1_epi32(-1))};
#endif
}

inline V128 Add64(V128 a, V128 b) {
#if defined(HSGF_SIMD_NEON)
  return {vreinterpretq_u8_u64(vaddq_u64(vreinterpretq_u64_u8(a.raw),
                                         vreinterpretq_u64_u8(b.raw)))};
#else
  return {_mm_add_epi64(a.raw, b.raw)};
#endif
}

template <int kShift>
inline V128 ShiftRight64(V128 a) {
#if defined(HSGF_SIMD_NEON)
  return {vreinterpretq_u8_u64(
      vshrq_n_u64(vreinterpretq_u64_u8(a.raw), kShift))};
#else
  return {_mm_srli_epi64(a.raw, kShift)};
#endif
}

template <int kShift>
inline V128 ShiftLeft64(V128 a) {
#if defined(HSGF_SIMD_NEON)
  return {vreinterpretq_u8_u64(
      vshlq_n_u64(vreinterpretq_u64_u8(a.raw), kShift))};
#else
  return {_mm_slli_epi64(a.raw, kShift)};
#endif
}

// Widens exactly 4 bytes at `p` into 4 uint32 lanes (no overread).
inline V128 WidenLoad4x8To32(const void* p);

// Widens the low 4 bytes of `a` (loaded as bytes 0..3) into 4 uint32 lanes.
inline V128 WidenLow4x8To32(V128 a) {
#if defined(HSGF_SIMD_NEON)
  return {vreinterpretq_u8_u32(
      vmovl_u16(vget_low_u16(vmovl_u8(vget_low_u8(a.raw)))))};
#else
  const __m128i zero = _mm_setzero_si128();
  return {_mm_unpacklo_epi16(_mm_unpacklo_epi8(a.raw, zero), zero)};
#endif
}

inline V128 WidenLoad4x8To32(const void* p) {
  uint32_t word = 0;
  std::memcpy(&word, p, 4);
  return WidenLow4x8To32(Splat32(static_cast<int32_t>(word)));
}

// Index (0..15) of the first byte lane whose high bit is set, or 16 if none.
// Compare results feed this: an all-ones lane reads as "set".
inline unsigned FirstSetByte128(V128 mask) {
#if defined(HSGF_SIMD_NEON)
  // Narrow each 16-bit pair to a nibble: bit i*4 of the scalar mirrors byte
  // i's high bits, so a set byte lane becomes a set nibble.
  const uint8x8_t nibbles =
      vshrn_n_u16(vreinterpretq_u16_u8(mask.raw), 4);
  const uint64_t bits = vget_lane_u64(vreinterpret_u64_u8(nibbles), 0);
  if (bits == 0) return 16;
  return static_cast<unsigned>(__builtin_ctzll(bits)) >> 2;
#else
  const unsigned bits = static_cast<unsigned>(_mm_movemask_epi8(mask.raw));
  if (bits == 0) return 16;
  return static_cast<unsigned>(__builtin_ctz(bits));
#endif
}

inline bool AnySet128(V128 mask) {
#if defined(HSGF_SIMD_NEON)
  return vmaxvq_u8(mask.raw) != 0;
#else
  return _mm_movemask_epi8(mask.raw) != 0;
#endif
}

inline bool AllSet128(V128 mask) {
#if defined(HSGF_SIMD_NEON)
  return vminvq_u8(mask.raw) == 0xff;
#else
  return _mm_movemask_epi8(mask.raw) == 0xffff;
#endif
}

// Low 64 bits of the lane-wise 64x64 product. Neither SSE2 nor AVX2 has a
// native epi64 low multiply (that is AVX-512DQ), so it is synthesized from
// 32x32->64 partial products: lo(a*b) = lo32(a)*lo32(b)
// + ((lo32(a)*hi32(b) + hi32(a)*lo32(b)) << 32). NEON has no 64-bit vector
// multiply at all; NEON TUs use the scalar mix instead (kernels_neon.cc).
#if !defined(HSGF_SIMD_NEON)
inline V128 MulLow64(V128 a, V128 b) {
  const __m128i a_hi = _mm_srli_epi64(a.raw, 32);
  const __m128i b_hi = _mm_srli_epi64(b.raw, 32);
  const __m128i lo_lo = _mm_mul_epu32(a.raw, b.raw);
  const __m128i cross = _mm_add_epi64(_mm_mul_epu32(a_hi, b.raw),
                                      _mm_mul_epu32(a.raw, b_hi));
  return {_mm_add_epi64(lo_lo, _mm_slli_epi64(cross, 32))};
}
#endif

inline uint64_t ExtractLane64(V128 a, int lane) {
  uint64_t lanes[2];
  Store128(lanes, a);
  return lanes[lane];
}

#endif  // HSGF_SIMD_X128

#if defined(HSGF_SIMD_X256)

struct V256 {
  __m256i raw;
};

inline V256 Load256(const void* p) {
  return {_mm256_loadu_si256(static_cast<const __m256i*>(p))};
}

inline void Store256(void* p, V256 v) {
  _mm256_storeu_si256(static_cast<__m256i*>(p), v.raw);
}

inline V256 Splat8x32(uint8_t x) {
  return {_mm256_set1_epi8(static_cast<char>(x))};
}

inline V256 Splat32x8(int32_t x) { return {_mm256_set1_epi32(x)}; }

inline V256 Splat64x4(uint64_t x) {
  return {_mm256_set1_epi64x(static_cast<long long>(x))};
}

inline V256 CmpEq8x32(V256 a, V256 b) {
  return {_mm256_cmpeq_epi8(a.raw, b.raw)};
}

inline V256 CmpEq32x8(V256 a, V256 b) {
  return {_mm256_cmpeq_epi32(a.raw, b.raw)};
}

inline V256 Or256(V256 a, V256 b) { return {_mm256_or_si256(a.raw, b.raw)}; }

inline V256 Xor256(V256 a, V256 b) {
  return {_mm256_xor_si256(a.raw, b.raw)};
}

inline V256 Add64x4(V256 a, V256 b) {
  return {_mm256_add_epi64(a.raw, b.raw)};
}

template <int kShift>
inline V256 ShiftRight64x4(V256 a) {
  return {_mm256_srli_epi64(a.raw, kShift)};
}

template <int kShift>
inline V256 ShiftLeft64x4(V256 a) {
  return {_mm256_slli_epi64(a.raw, kShift)};
}

// Widens 8 bytes at `p` into 8 uint32 lanes (no overread).
inline V256 WidenLoad8x8To32(const void* p) {
  __m128i bytes = _mm_setzero_si128();
  std::memcpy(&bytes, p, 8);  // low 8 bytes; the cvt only reads those
  return {_mm256_cvtepu8_epi32(bytes)};
}

// Widens 4 bytes at `p` into 4 uint64 lanes (no overread).
inline V256 WidenLoad4x8To64(const void* p) {
  __m128i bytes = _mm_setzero_si128();
  std::memcpy(&bytes, p, 4);
  return {_mm256_cvtepu8_epi64(bytes)};
}

// Index (0..31) of the first byte lane whose high bit is set, or 32 if none.
inline unsigned FirstSetByte256(V256 mask) {
  const uint32_t bits =
      static_cast<uint32_t>(_mm256_movemask_epi8(mask.raw));
  if (bits == 0) return 32;
  return static_cast<unsigned>(__builtin_ctz(bits));
}

inline bool AnySet256(V256 mask) {
  return _mm256_movemask_epi8(mask.raw) != 0;
}

inline V256 MulLow64x4(V256 a, V256 b) {
  const __m256i a_hi = _mm256_srli_epi64(a.raw, 32);
  const __m256i b_hi = _mm256_srli_epi64(b.raw, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a.raw, b.raw);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b.raw),
                                         _mm256_mul_epu32(a.raw, b_hi));
  return {_mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32))};
}

#endif  // HSGF_SIMD_X256

}  // namespace hsgf::simd

#endif  // HSGF_SIMD_SIMD_H_
