// AVX2 kernel table: 256-bit variants of the census kernels. This TU is
// compiled with -mavx2 (see src/simd/CMakeLists.txt) and its code runs only
// after runtime cpuid detection (dispatch.cc), so VEX instructions never
// execute on CPUs without AVX2. On non-x86 targets or without the flag the
// TU degrades to a nullptr table and dispatch falls back to SSE2/NEON.
#include "simd/kernels.h"
#include "simd/simd.h"

#if defined(HSGF_SIMD_X256) && !defined(HSGF_SIMD_DISABLED)

namespace hsgf::simd::internal {
namespace {

constexpr size_t kMaxMemberSplats = 16;

size_t LabelRunLength256(const int32_t* to, const uint8_t* label, size_t n,
                         uint8_t run_label, const int32_t* members,
                         size_t num_members) {
  if (num_members > kMaxMemberSplats) {
    return LabelRunLengthScalar(to, label, n, run_label, members, num_members);
  }
  V256 member_splat[kMaxMemberSplats];
  for (size_t m = 0; m < num_members; ++m) {
    member_splat[m] = Splat32x8(members[m]);
  }
  const V256 run = Splat32x8(static_cast<int32_t>(run_label));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const V256 labels = WidenLoad8x8To32(label + i);
    V256 bad = Xor256(CmpEq32x8(labels, run), Splat32x8(-1));
    const V256 ids = Load256(to + i);
    for (size_t m = 0; m < num_members; ++m) {
      bad = Or256(bad, CmpEq32x8(ids, member_splat[m]));
    }
    const unsigned first = FirstSetByte256(bad);
    if (first < 32) return i + first / 4;
  }
  return i + LabelRunLengthScalar(to + i, label + i, n - i, run_label,
                                  members, num_members);
}

int CompareBytes256(const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const V256 diff =
        Xor256(CmpEq8x32(Load256(a + i), Load256(b + i)), Splat32x8(-1));
    const unsigned first = FirstSetByte256(diff);
    if (first < 32) {
      const size_t k = i + first;
      return a[k] < b[k] ? -1 : 1;
    }
  }
  return CompareBytesScalar(a + i, b + i, n - i);
}

inline V256 MixLanes256(V256 x) {
  x = MulLow64x4(Xor256(x, ShiftRight64x4<30>(x)),
                 Splat64x4(0xbf58476d1ce4e5b9ULL));
  x = MulLow64x4(Xor256(x, ShiftRight64x4<27>(x)),
                 Splat64x4(0x94d049bb133111ebULL));
  return Xor256(x, ShiftRight64x4<31>(x));
}

inline V128 MixLanes128V(V128 x) {
  x = MulLow64(Xor128(x, ShiftRight64<30>(x)),
               Splat64(0xbf58476d1ce4e5b9ULL));
  x = MulLow64(Xor128(x, ShiftRight64<27>(x)),
               Splat64(0x94d049bb133111ebULL));
  return Xor128(x, ShiftRight64<31>(x));
}

void MixPairV(uint64_t* a, uint64_t* b) {
  uint64_t lanes[2] = {*a, *b};
  Store128(lanes, MixLanes128V(Load128(lanes)));
  *a = lanes[0];
  *b = lanes[1];
}

void MixBatch256(const uint64_t* in, uint64_t* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    Store256(out + i, MixLanes256(Load256(in + i)));
  }
  for (; i + 2 <= n; i += 2) {
    Store128(out + i, MixLanes128V(Load128(in + i)));
  }
  if (i < n) MixBatchScalar(in + i, out + i, n - i);
}

uint64_t DotU8U64_256(const uint8_t* counts, const uint64_t* weights,
                      size_t n) {
  V256 acc = Splat64x4(0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = Add64x4(acc,
                  MulLow64x4(WidenLoad4x8To64(counts + i), Load256(weights + i)));
  }
  uint64_t lanes[4];
  Store256(lanes, acc);
  // mod-2^64 addition commutes, so lane order does not affect the result.
  uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += static_cast<uint64_t>(counts[i]) * weights[i];
  return sum;
}

}  // namespace

const KernelTable* Avx2Kernels() {
  static const KernelTable table = {
      &LabelRunLength256, &CompareBytes256, &MixPairV,
      &MixBatch256,       &DotU8U64_256,
  };
  return &table;
}

}  // namespace hsgf::simd::internal

#else

namespace hsgf::simd::internal {
const KernelTable* Avx2Kernels() { return nullptr; }
}  // namespace hsgf::simd::internal

#endif
