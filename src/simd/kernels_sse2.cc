// SSE2 kernel table. SSE2 is part of the x86-64 baseline ABI, so this TU
// needs no special compile flags — it simply compiles to nothing off x86.
#include "simd/kernels.h"
#include "simd/simd.h"

#if defined(HSGF_SIMD_X128) && !defined(HSGF_SIMD_NEON) && \
    !defined(HSGF_SIMD_DISABLED)

#include "simd/kernels128-inl.h"

namespace hsgf::simd::internal {

const KernelTable* Sse2Kernels() {
  static const KernelTable table = {
      &LabelRunLength128, &CompareBytes128, &MixPair128,
      &MixBatch128,       &DotU8U64_128,
  };
  return &table;
}

}  // namespace hsgf::simd::internal

#else

namespace hsgf::simd::internal {
const KernelTable* Sse2Kernels() { return nullptr; }
}  // namespace hsgf::simd::internal

#endif
