#ifndef HSGF_SIMD_KERNELS_H_
#define HSGF_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.h"

namespace hsgf::simd {

// The vectorized primitives the census hot loops are written against. Every
// entry has one canonical scalar definition (kernels_scalar.cc) and optional
// per-ISA variants selected at runtime; all variants are bit-identical by
// contract — same results, same wraparound arithmetic, no reordering that a
// caller could observe (u64 sums are mod-2^64 commutative, so vector
// accumulation trees are fine; comparisons return positions, not masks).
struct KernelTable {
  // Length of the leading label run: the number of consecutive entries at
  // the front of (to[i], label[i]), i < n, with label[i] == run_label and
  // to[i] not equal to any of members[0..num_members). This is the census
  // grouping scan — `members` is the current subgraph's node list (at most
  // emax + 1 entries), so candidates already inside the subgraph break the
  // run exactly like a label mismatch does.
  size_t (*label_run_length)(const int32_t* to, const uint8_t* label,
                             size_t n, uint8_t run_label,
                             const int32_t* members, size_t num_members);

  // memcmp semantics on byte strings of equal length n: <0, 0, >0 as a
  // compares lexicographically below, equal to, or above b. Used for the
  // canonical descending encoding-block sort (an explicit kernel because
  // GCC's -O3 bound analysis misfires on inlined std::lexicographical
  // compares over vector<uint8_t>; see encoding.cc).
  int (*compare_bytes)(const uint8_t* a, const uint8_t* b, size_t n);

  // SplitMix64 finalization of two independent lanes (the census Mix step
  // for the two endpoint contributions an edge changes): *a = Mix(*a),
  // *b = Mix(*b).
  void (*mix_pair)(uint64_t* a, uint64_t* b);

  // out[i] = Mix(in[i]) for i < n. `in` and `out` may alias exactly.
  void (*mix_batch)(const uint64_t* in, uint64_t* out, size_t n);

  // Σ_i counts[i] * weights[i] mod 2^64 — the rolling-hash Eq. 5 dot
  // product of a signature's neighbour counts against a label's power row.
  uint64_t (*dot_u8_u64)(const uint8_t* counts, const uint64_t* weights,
                         size_t n);
};

// Table for the currently active ISA level (see dispatch.h). The pointer
// identity changes only through ForceIsa.
const KernelTable& ActiveKernels();

// Table for a specific level, or nullptr if this binary/CPU cannot run it.
// Lets tests pin both sides of a scalar-vs-vector comparison without
// touching the process-global active level.
const KernelTable* KernelsFor(IsaLevel level);

// Convenience wrappers over ActiveKernels(); call sites that dispatch many
// times per microsecond should hoist `const KernelTable& k = ActiveKernels()`
// instead.
inline size_t LabelRunLength(const int32_t* to, const uint8_t* label,
                             size_t n, uint8_t run_label,
                             const int32_t* members, size_t num_members) {
  return ActiveKernels().label_run_length(to, label, n, run_label, members,
                                          num_members);
}
inline int CompareBytes(const uint8_t* a, const uint8_t* b, size_t n) {
  return ActiveKernels().compare_bytes(a, b, n);
}
inline void MixPair(uint64_t* a, uint64_t* b) {
  ActiveKernels().mix_pair(a, b);
}
inline void MixBatch(const uint64_t* in, uint64_t* out, size_t n) {
  ActiveKernels().mix_batch(in, out, n);
}
inline uint64_t DotU8U64(const uint8_t* counts, const uint64_t* weights,
                         size_t n) {
  return ActiveKernels().dot_u8_u64(counts, weights, n);
}

namespace internal {

// Scalar reference implementations, exposed so per-ISA tables can borrow
// entries they have no profitable vector form for, and so tests can call
// the reference directly.
size_t LabelRunLengthScalar(const int32_t* to, const uint8_t* label, size_t n,
                            uint8_t run_label, const int32_t* members,
                            size_t num_members);
int CompareBytesScalar(const uint8_t* a, const uint8_t* b, size_t n);
void MixPairScalar(uint64_t* a, uint64_t* b);
void MixBatchScalar(const uint64_t* in, uint64_t* out, size_t n);
uint64_t DotU8U64Scalar(const uint8_t* counts, const uint64_t* weights,
                        size_t n);

const KernelTable* ScalarKernels();  // always available
const KernelTable* Sse2Kernels();  // nullptr unless compiled for x86-64
const KernelTable* Avx2Kernels();  // nullptr unless built with AVX2 support
const KernelTable* NeonKernels();  // nullptr unless compiled for aarch64

}  // namespace internal

}  // namespace hsgf::simd

#endif  // HSGF_SIMD_KERNELS_H_
