#ifndef HSGF_SIMD_KERNELS128_INL_H_
#define HSGF_SIMD_KERNELS128_INL_H_

// Generic 128-bit kernel bodies written against the simd.h wrapper API, so
// the SSE2 and NEON translation units compile the same logic against their
// native vector types. Include only from kernel TUs (after simd.h has
// defined HSGF_SIMD_X128); everything here has internal linkage.
//
// The multiply-based kernels (mix, dot) are guarded out on NEON, which has
// no 64-bit vector multiply — the NEON table falls back to the scalar
// reference for those entries.

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"
#include "simd/simd.h"

#if !defined(HSGF_SIMD_X128)
#error "kernels128-inl.h requires a 128-bit wrapper target"
#endif

namespace hsgf::simd::internal {
namespace {

// Vector splats of the member list are hoisted once per call; the census
// never exceeds emax + 1 members, so a miss on this cap means the caller is
// not the census hot loop and the scalar reference is fine.
constexpr size_t kMaxMemberSplats = 16;

size_t LabelRunLength128(const int32_t* to, const uint8_t* label, size_t n,
                         uint8_t run_label, const int32_t* members,
                         size_t num_members) {
  if (num_members > kMaxMemberSplats) {
    return LabelRunLengthScalar(to, label, n, run_label, members, num_members);
  }
  V128 member_splat[kMaxMemberSplats];
  for (size_t m = 0; m < num_members; ++m) {
    member_splat[m] = Splat32(members[m]);
  }
  const V128 run = Splat32(static_cast<int32_t>(run_label));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const V128 labels = WidenLoad4x8To32(label + i);
    V128 bad = Not128(CmpEq32(labels, run));
    const V128 ids = Load128(to + i);
    for (size_t m = 0; m < num_members; ++m) {
      bad = Or128(bad, CmpEq32(ids, member_splat[m]));
    }
    const unsigned first = FirstSetByte128(bad);
    if (first < 16) return i + first / 4;
  }
  return i + LabelRunLengthScalar(to + i, label + i, n - i, run_label,
                                  members, num_members);
}

int CompareBytes128(const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const V128 diff = Not128(CmpEq8(Load128(a + i), Load128(b + i)));
    const unsigned first = FirstSetByte128(diff);
    if (first < 16) {
      const size_t k = i + first;
      return a[k] < b[k] ? -1 : 1;
    }
  }
  return CompareBytesScalar(a + i, b + i, n - i);
}

#if !defined(HSGF_SIMD_NEON)

// Two independent SplitMix64 finalizations in the two 64-bit lanes.
inline V128 MixLanes128(V128 x) {
  x = MulLow64(Xor128(x, ShiftRight64<30>(x)),
               Splat64(0xbf58476d1ce4e5b9ULL));
  x = MulLow64(Xor128(x, ShiftRight64<27>(x)),
               Splat64(0x94d049bb133111ebULL));
  return Xor128(x, ShiftRight64<31>(x));
}

void MixPair128(uint64_t* a, uint64_t* b) {
  uint64_t lanes[2] = {*a, *b};
  Store128(lanes, MixLanes128(Load128(lanes)));
  *a = lanes[0];
  *b = lanes[1];
}

void MixBatch128(const uint64_t* in, uint64_t* out, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    Store128(out + i, MixLanes128(Load128(in + i)));
  }
  if (i < n) MixBatchScalar(in + i, out + i, n - i);
}

uint64_t DotU8U64_128(const uint8_t* counts, const uint64_t* weights,
                      size_t n) {
  V128 acc = Splat64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64_t lanes[2] = {counts[i], counts[i + 1]};
    acc = Add64(acc, MulLow64(Load128(lanes), Load128(weights + i)));
  }
  // mod-2^64 addition commutes, so lane order does not affect the result.
  uint64_t sum = ExtractLane64(acc, 0) + ExtractLane64(acc, 1);
  for (; i < n; ++i) sum += static_cast<uint64_t>(counts[i]) * weights[i];
  return sum;
}

#endif  // !HSGF_SIMD_NEON

}  // namespace
}  // namespace hsgf::simd::internal

#endif  // HSGF_SIMD_KERNELS128_INL_H_
