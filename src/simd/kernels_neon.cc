// NEON kernel table (aarch64 baseline). NEON has no 64-bit vector multiply,
// so the SplitMix64-based entries borrow the scalar reference — aarch64
// scalar MUL pipelines the two independent mix chains well anyway.
#include "simd/kernels.h"
#include "simd/simd.h"

#if defined(HSGF_SIMD_NEON) && !defined(HSGF_SIMD_DISABLED)

#include "simd/kernels128-inl.h"

namespace hsgf::simd::internal {

const KernelTable* NeonKernels() {
  static const KernelTable table = {
      &LabelRunLength128, &CompareBytes128, &MixPairScalar,
      &MixBatchScalar,    &DotU8U64Scalar,
  };
  return &table;
}

}  // namespace hsgf::simd::internal

#else

namespace hsgf::simd::internal {
const KernelTable* NeonKernels() { return nullptr; }
}  // namespace hsgf::simd::internal

#endif
