#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd/kernels.h"

namespace hsgf::simd {
namespace {

// Runtime CPU capability for AVX2. SSE2 needs no probe (x86-64 baseline),
// NEON needs no probe (aarch64 baseline) — AVX2 is the only level where the
// binary may carry code the CPU cannot run.
bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// Table for `level` iff this binary carries it AND this CPU can run it.
const KernelTable* RunnableTable(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return internal::ScalarKernels();
    case IsaLevel::kSse2:
      return internal::Sse2Kernels();
    case IsaLevel::kAvx2:
      return CpuHasAvx2() ? internal::Avx2Kernels() : nullptr;
    case IsaLevel::kNeon:
      return internal::NeonKernels();
  }
  return nullptr;
}

struct Dispatch {
  std::atomic<const KernelTable*> table;
  std::atomic<int> level;
};

Dispatch& State() {
  // Magic-static init: detect once, apply the HSGF_SIMD env override once,
  // before the first kernel dispatch from any thread. (Both statics are
  // initialized under the same guard; no caller observes the null table.)
  static Dispatch state;
  static const bool init = [] {
    IsaLevel best = IsaLevel::kScalar;
    for (IsaLevel candidate :
         {IsaLevel::kAvx2, IsaLevel::kSse2, IsaLevel::kNeon}) {
      if (RunnableTable(candidate) != nullptr) {
        best = candidate;
        break;
      }
    }
    if (const char* env = std::getenv("HSGF_SIMD")) {
      IsaLevel forced = best;
      if (std::strcmp(env, "scalar") == 0) forced = IsaLevel::kScalar;
      else if (std::strcmp(env, "sse2") == 0) forced = IsaLevel::kSse2;
      else if (std::strcmp(env, "avx2") == 0) forced = IsaLevel::kAvx2;
      else if (std::strcmp(env, "neon") == 0) forced = IsaLevel::kNeon;
      if (RunnableTable(forced) != nullptr) best = forced;
    }
    state.table.store(RunnableTable(best), std::memory_order_relaxed);
    state.level.store(static_cast<int>(best), std::memory_order_relaxed);
    return true;
  }();
  (void)init;
  return state;
}

}  // namespace

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSse2:
      return "sse2";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

const std::vector<IsaLevel>& SupportedIsaLevels() {
  static const std::vector<IsaLevel> levels = [] {
    std::vector<IsaLevel> out;
    for (IsaLevel candidate :
         {IsaLevel::kAvx2, IsaLevel::kSse2, IsaLevel::kNeon}) {
      if (RunnableTable(candidate) != nullptr) out.push_back(candidate);
    }
    out.push_back(IsaLevel::kScalar);
    return out;
  }();
  return levels;
}

IsaLevel DetectedIsa() { return SupportedIsaLevels().front(); }

IsaLevel ActiveIsa() {
  return static_cast<IsaLevel>(State().level.load(std::memory_order_acquire));
}

IsaLevel ForceIsa(IsaLevel level) {
  const KernelTable* table = RunnableTable(level);
  if (table != nullptr) {
    Dispatch& state = State();
    state.table.store(table, std::memory_order_release);
    state.level.store(static_cast<int>(level), std::memory_order_release);
  }
  return ActiveIsa();
}

const KernelTable& ActiveKernels() {
  return *State().table.load(std::memory_order_acquire);
}

const KernelTable* KernelsFor(IsaLevel level) { return RunnableTable(level); }

}  // namespace hsgf::simd
