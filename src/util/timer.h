#ifndef HSGF_UTIL_TIMER_H_
#define HSGF_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hsgf::util {

// Wall-clock stopwatch used for the per-node extraction timings (Table 3).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hsgf::util

#endif  // HSGF_UTIL_TIMER_H_
