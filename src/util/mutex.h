#ifndef HSGF_UTIL_MUTEX_H_
#define HSGF_UTIL_MUTEX_H_

// Capability-annotated wrappers over the standard synchronization
// primitives. libstdc++'s std::mutex carries no capability attributes, so
// HSGF_GUARDED_BY(some_std_mutex) trips -Wthread-safety-attributes; these
// thin wrappers (same layout, same cost — every method is an inline
// forward) give the analysis something to reason about. All locked code
// outside src/util uses these types; tools/hsgf_lint.py enforces that.
//
// The scoped lock types deliberately mirror the Clang documentation's
// MutexLocker shape (and absl's ReleasableMutexLock): a locally
// constructed MutexLock may Unlock()/Lock() mid-scope and the analysis
// tracks the capability state across those calls. Note the analysis only
// tracks scoped objects constructed in the current function — helpers
// that need to drop a caller's lock are restructured so the unlock
// happens on the caller's own local (see router.cc's dial cycle).

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace hsgf::util {

class CondVar;

// An exclusive mutex the thread-safety analysis understands.
class HSGF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HSGF_ACQUIRE() { mu_.lock(); }
  void Unlock() HSGF_RELEASE() { mu_.unlock(); }
  bool TryLock() HSGF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

// RAII exclusive lock over util::Mutex, releasable and re-acquirable
// mid-scope (the dtor releases only if currently held).
class HSGF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HSGF_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.mu_.lock();
  }
  ~MutexLock() HSGF_RELEASE() {
    if (held_) mu_.mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() HSGF_RELEASE() {
    mu_.mu_.unlock();
    held_ = false;
  }
  void Lock() HSGF_ACQUIRE() {
    mu_.mu_.lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

// Condition variable paired with util::Mutex. Waits take the MutexLock by
// reference; the capability state is unchanged across a Wait (released and
// re-acquired inside), which matches what the analysis assumes for an
// unannotated call. Waiters must use explicit `while (!pred) cv.Wait(lock)`
// loops — a predicate lambda would be analyzed as a separate, unannotated
// function and defeat GUARDED_BY checking of the predicate's reads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  // Returns false on timeout (the lock is re-held either way).
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// A reader/writer mutex the analysis understands (std::shared_mutex
// equivalent). Exclusive acquisition guards writes; shared guards reads.
class HSGF_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() HSGF_ACQUIRE() { mu_.lock(); }
  void Unlock() HSGF_RELEASE() { mu_.unlock(); }
  void LockShared() HSGF_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() HSGF_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderMutexLock;
  friend class WriterMutexLock;
  std::shared_mutex mu_;
};

class HSGF_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) HSGF_ACQUIRE(mu) : mu_(mu) {
    mu_.mu_.lock();
  }
  ~WriterMutexLock() HSGF_RELEASE() { mu_.mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class HSGF_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) HSGF_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.mu_.lock_shared();
  }
  // Generic release: the scoped object holds the capability in shared mode
  // but clang's join logic wants a mode-agnostic release on destructors.
  ~ReaderMutexLock() HSGF_RELEASE_GENERIC() { mu_.mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace hsgf::util

#endif  // HSGF_UTIL_MUTEX_H_
