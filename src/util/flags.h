#ifndef HSGF_UTIL_FLAGS_H_
#define HSGF_UTIL_FLAGS_H_

#include <limits>
#include <vector>

namespace hsgf::util {

// Strict numeric parsing: the whole token must be consumed and in range.
// (Shared by FlagParser and the tools' comma-separated node lists.)
bool ParseLong(const char* s, long* out);
bool ParseDouble(const char* s, double* out);

// Strict command-line parser shared by the CLI tools (hsgf_extract,
// hsgf_serve, hsgf_query). Flags are `--name` (boolean presence) or
// `--name VALUE`; anything unregistered, a flag missing its value, or a
// value that fails to parse or lies outside its registered range is an
// error: Parse() prints one `error: ...` line to stderr and returns false,
// and every tool turns that into its usage text and exit code 2.
//
// The parser stores borrowed pointers: the registered output locations and
// the argv strings must outlive it. Defaults are whatever the outputs hold
// before Parse() runs.
class FlagParser {
 public:
  // --name present => *out = true. Takes no value.
  void AddBool(const char* name, bool* out);

  // --name VALUE => *out = VALUE (the argv pointer, not a copy).
  void AddString(const char* name, const char** out);

  // --name VALUE with VALUE an integer in [min_value, max_value].
  void AddLong(const char* name, long* out, long min_value,
               long max_value = std::numeric_limits<long>::max());

  // --name VALUE with VALUE a double in [min_value, max_value]; when
  // `exclusive_min` the lower bound itself is rejected (e.g. deadlines
  // that must be strictly positive).
  void AddDouble(const char* name, double* out, double min_value,
                 double max_value = std::numeric_limits<double>::infinity(),
                 bool exclusive_min = false);

  // Consumes argv[1..argc); returns false (after printing the error) on the
  // first unknown flag, missing value, or out-of-range value.
  bool Parse(int argc, char** argv) const;

 private:
  enum class Kind { kBool, kString, kLong, kDouble };

  struct Flag {
    const char* name;
    Kind kind;
    bool* bool_out = nullptr;
    const char** string_out = nullptr;
    long* long_out = nullptr;
    double* double_out = nullptr;
    long long_min = 0;
    long long_max = 0;
    double double_min = 0.0;
    double double_max = 0.0;
    bool exclusive_min = false;
  };

  std::vector<Flag> flags_;
};

}  // namespace hsgf::util

#endif  // HSGF_UTIL_FLAGS_H_
