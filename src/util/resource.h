#ifndef HSGF_UTIL_RESOURCE_H_
#define HSGF_UTIL_RESOURCE_H_

#include <cstdint>

namespace hsgf::util {

// Peak resident set size of the calling process, in bytes (getrusage
// ru_maxrss, normalized across the platforms that report it in KiB vs
// bytes). Returns 0 when the platform provides no measurement.
int64_t PeakRssBytes();

}  // namespace hsgf::util

#endif  // HSGF_UTIL_RESOURCE_H_
