#ifndef HSGF_UTIL_METRICS_H_
#define HSGF_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace hsgf::util {

// Handle to a registered metric. Encodes the metric kind and its storage
// index; obtain one from MetricsRegistry::Counter/Gauge/Histogram/Span.
// Negative ids are inert: every recording call silently ignores them, so
// optional instrumentation can default to kInvalidMetric.
using MetricId = int32_t;
inline constexpr MetricId kInvalidMetric = -1;

// Log-linear histogram geometry (HdrHistogram-lite): values 0..7 get exact
// buckets; every octave [2^k, 2^{k+1}) above that is split into 8 equal
// sub-buckets, so any recorded value is bucketed with <= 12.5% relative
// error. Values >= 2^40 clamp into the last bucket.
namespace metrics_internal {
inline constexpr int kSubBuckets = 8;
inline constexpr int kMinOctave = 3;   // first log-bucketed octave [8, 16)
inline constexpr int kMaxOctave = 39;  // last octave [2^39, 2^40)
inline constexpr int kNumBuckets =
    kSubBuckets + (kMaxOctave - kMinOctave + 1) * kSubBuckets;

int BucketIndex(int64_t value);
// Half-open [lower, upper) bounds of bucket `index`.
std::pair<int64_t, int64_t> BucketBounds(int index);
}  // namespace metrics_internal

struct HistogramSnapshot {
  struct Bucket {
    int64_t lower = 0;  // inclusive
    int64_t upper = 0;  // exclusive
    int64_t count = 0;
  };

  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;  // exact maximum observed value (0 if empty)
  std::vector<Bucket> buckets;  // non-empty buckets, ascending by bound

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }

  // Approximate p-th percentile (p in [0, 100]): the upper bound of the
  // bucket holding the p-th ranked observation, clamped to `max`. Accurate
  // to one log-linear bucket (<= 12.5% relative error).
  int64_t Percentile(double p) const;
};

struct SpanSnapshot {
  std::string name;
  double seconds = 0.0;  // total accumulated wall-clock time
  int64_t count = 0;     // number of recorded intervals
};

// Point-in-time aggregation of every metric in a registry. Plain data —
// safe to copy, store, and read after the registry is gone.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;  // sorted by name
  std::vector<std::pair<std::string, double>> gauges;     // sorted by name
  std::vector<HistogramSnapshot> histograms;              // sorted by name
  std::vector<SpanSnapshot> spans;                        // sorted by name

  // Lookup helpers; Counter/Gauge return 0 when absent, the pointer forms
  // return nullptr.
  int64_t Counter(const std::string& name) const;
  double Gauge(const std::string& name) const;
  const HistogramSnapshot* Histogram(const std::string& name) const;
  const SpanSnapshot* Span(const std::string& name) const;

  // Serializes the snapshot as a JSON object (schema documented in
  // DESIGN.md §Observability).
  std::string ToJson() const;
};

// Registry of named counters, gauges, log-scale histograms, and wall-clock
// spans.
//
// Counters and histograms are sharded per thread: each thread lazily gets a
// private slot array, and a recording call is one relaxed atomic load/store
// on the caller's own shard — no contended read-modify-write, no locks —
// so instrumentation is cheap enough for the census hot loop. Snapshot()
// sums the shards under the registry mutex. Gauges (last-set-wins) and
// spans (accumulated rarely, at stage granularity) live in the registry
// itself.
//
// Registration is idempotent by name: registering an existing (name, kind)
// pair returns the original id, so independent components can share metric
// names. Recording on a registry is thread-safe; the registry must outlive
// every thread that records into it.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration. Names are expected to be dotted identifiers
  // ("census.subgraphs_total"). Throws std::runtime_error if a name is
  // re-registered as a different kind or slot capacity is exhausted.
  MetricId Counter(const std::string& name);
  MetricId Gauge(const std::string& name);
  MetricId Histogram(const std::string& name);
  MetricId Span(const std::string& name);

  // Recording. All calls ignore invalid (negative) ids.
  void Increment(MetricId counter, int64_t delta = 1);
  void SetGauge(MetricId gauge, double value);
  void Observe(MetricId histogram, int64_t value);  // negative clamps to 0
  void AddSpanSeconds(MetricId span, double seconds) HSGF_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const HSGF_EXCLUDES(mutex_);

 private:
  friend class ScopedSpan;
  enum class Kind : int32_t { kCounter = 0, kGauge, kHistogram, kSpan };
  struct MetricInfo {
    std::string name;
    Kind kind;
    int base;  // slot index (counter/histogram) or dense index (gauge/span)
  };
  struct Shard;
  struct SpanData {
    double seconds = 0.0;
    int64_t count = 0;
  };

  MetricId Register(const std::string& name, Kind kind, int slots_needed)
      HSGF_EXCLUDES(mutex_);
  Shard& LocalShard() HSGF_EXCLUDES(mutex_);

  const uint64_t id_;  // process-unique; keys the thread-local shard cache
  mutable Mutex mutex_;
  std::vector<MetricInfo> metrics_ HSGF_GUARDED_BY(mutex_);
  int next_slot_ HSGF_GUARDED_BY(mutex_) = 0;
  std::vector<std::unique_ptr<Shard>> shards_ HSGF_GUARDED_BY(mutex_);
  // Deliberately NOT guarded: the deque only grows (under mutex_, inside
  // Register) and std::deque growth never moves existing elements, so
  // SetGauge can store into a registered element lock-free. The analysis
  // cannot express "guarded for growth, atomic per element".
  std::deque<std::atomic<double>> gauges_;
  std::vector<SpanData> spans_ HSGF_GUARDED_BY(mutex_);
};

// RAII helper recording the wall-clock time between construction and
// destruction into a span metric.
class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry& registry, MetricId span)
      : registry_(registry), span_(span) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { registry_.AddSpanSeconds(span_, watch_.ElapsedSeconds()); }

 private:
  MetricsRegistry& registry_;
  MetricId span_;
  Stopwatch watch_;
};

}  // namespace hsgf::util

#endif  // HSGF_UTIL_METRICS_H_
