#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace hsgf::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
  // Drain guarantee: workers only exit with an empty queue, so after the
  // joins every submitted task has run to completion. The lock is
  // uncontended (all workers joined) but keeps the accesses checkable.
  MutexLock lock(mutex_);
  HSGF_CHECK(tasks_.empty())
      << "thread pool destroyed with unexecuted tasks";
  HSGF_CHECK_EQ(in_flight_, 0)
      << "thread pool destroyed with tasks still in flight";
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    HSGF_CHECK(!shutting_down_)
        << "ThreadPool::Submit raced with the pool's destructor";
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(lock);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && tasks_.empty()) task_available_.Wait(lock);
      if (tasks_.empty()) return;  // shutting down, queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool& pool, int64_t count,
                 const std::function<void(int64_t)>& body,
                 int64_t chunk_size) {
  if (count <= 0) return;
  chunk_size = std::max<int64_t>(1, chunk_size);
  // A shared cursor hands out chunks dynamically so skewed per-item costs
  // (hub start nodes) do not serialize on one worker.
  auto cursor = std::make_shared<std::atomic<int64_t>>(0);
  unsigned num_tasks = std::min<int64_t>(pool.num_threads(),
                                         (count + chunk_size - 1) / chunk_size);
  for (unsigned t = 0; t < num_tasks; ++t) {
    pool.Submit([cursor, count, chunk_size, &body] {
      for (;;) {
        int64_t begin = cursor->fetch_add(chunk_size);
        if (begin >= count) return;
        int64_t end = std::min(count, begin + chunk_size);
        for (int64_t i = begin; i < end; ++i) body(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace hsgf::util
