#ifndef HSGF_UTIL_THREAD_ANNOTATIONS_H_
#define HSGF_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety (capability) analysis attributes, spelled with an
// HSGF_ prefix and compiled away entirely on non-Clang toolchains. The
// project convention (DESIGN.md §9) is:
//
//  - Every mutex-protected member is declared with
//    HSGF_GUARDED_BY(its_mutex_).
//  - Private helpers that assume the caller holds a lock are annotated
//    HSGF_REQUIRES(mutex_) and carry a "...Locked" suffix.
//  - Public entry points of classes with internal locking are annotated
//    HSGF_EXCLUDES(mutex_) so the analysis proves they are never called
//    with the lock already held (self-deadlock).
//  - Raw std::mutex / std::lock_guard are not used outside src/util;
//    code takes util::Mutex / util::MutexLock (see util/mutex.h), which
//    carry the capability attributes std::mutex lacks under libstdc++.
//  - Suppressions are per-function via HSGF_NO_THREAD_SAFETY_ANALYSIS and
//    must carry a comment explaining why the analysis cannot see the
//    invariant. Blanket suppression is not permitted.
//
// The analysis runs in the clang `thread-safety` CI job with
// -Wthread-safety -Wthread-safety-beta -Werror; GCC builds see no-ops.

#if defined(__clang__) && (!defined(SWIG))
#define HSGF_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HSGF_THREAD_ANNOTATION_(x)  // no-op
#endif

// Declares a type to be a capability ("mutex", "role", ...).
#define HSGF_CAPABILITY(x) HSGF_THREAD_ANNOTATION_(capability(x))

// Declares an RAII type that acquires a capability in its constructor and
// releases it in its destructor (std::lock_guard-shaped classes).
#define HSGF_SCOPED_CAPABILITY HSGF_THREAD_ANNOTATION_(scoped_lockable)

// Data member is protected by the given capability.
#define HSGF_GUARDED_BY(x) HSGF_THREAD_ANNOTATION_(guarded_by(x))

// Pointer member whose pointee is protected by the given capability.
#define HSGF_PT_GUARDED_BY(x) HSGF_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function requires the caller to hold the capability (exclusively /
// shared) on entry, and does not release it.
#define HSGF_REQUIRES(...) \
  HSGF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define HSGF_REQUIRES_SHARED(...) \
  HSGF_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability (must not be held on entry).
#define HSGF_ACQUIRE(...) \
  HSGF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define HSGF_ACQUIRE_SHARED(...) \
  HSGF_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

// Function releases the capability (must be held on entry).
#define HSGF_RELEASE(...) \
  HSGF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define HSGF_RELEASE_SHARED(...) \
  HSGF_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
// Releases a capability held in either mode (scoped-reader destructors).
#define HSGF_RELEASE_GENERIC(...) \
  HSGF_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// Function acquires the capability if and only if it returns `v`.
#define HSGF_TRY_ACQUIRE(v, ...) \
  HSGF_THREAD_ANNOTATION_(try_acquire_capability(v, __VA_ARGS__))

// Caller must NOT hold the capability (deadlock-prevention assertion).
#define HSGF_EXCLUDES(...) HSGF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Runtime assertion to the analysis that the capability is held (for code
// reachable only while locked, where the acquisition is invisible).
#define HSGF_ASSERT_CAPABILITY(x) \
  HSGF_THREAD_ANNOTATION_(assert_capability(x))

// The annotated function returns a reference to the capability guarding it.
#define HSGF_RETURN_CAPABILITY(x) HSGF_THREAD_ANNOTATION_(lock_returned(x))

// Per-function opt-out. Requires a comment explaining the invariant the
// analysis cannot see; see the suppression policy in DESIGN.md §9.
#define HSGF_NO_THREAD_SAFETY_ANALYSIS \
  HSGF_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // HSGF_UTIL_THREAD_ANNOTATIONS_H_
