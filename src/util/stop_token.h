#ifndef HSGF_UTIL_STOP_TOKEN_H_
#define HSGF_UTIL_STOP_TOKEN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

namespace hsgf::util {

// Cooperative cancellation for long extractions: a StopSource owns the stop
// state (explicit RequestStop() and/or a wall-clock deadline) and hands out
// cheap copyable StopTokens that workers poll. Unlike std::stop_token this
// carries an optional deadline, so a single poll covers both "the user hit
// ^C" and "the time budget ran out".
//
// A default-constructed StopToken has no state and never reports stop —
// polling it is a single null check, so APIs can take one by value with no
// cost when cancellation is unused.

namespace stop_internal {
struct StopState {
  std::atomic<bool> requested{false};
  std::atomic<int64_t> deadline_ns{0};  // steady_clock ns since epoch; 0=none
  // Optional parent: this state also reports stop once the parent does.
  // Immutable after construction, so polling stays lock-free. Chains are
  // shallow (a linked source of a linked source), so recursion is fine.
  std::shared_ptr<StopState> parent;

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  bool StopRequested() {
    if (requested.load(std::memory_order_relaxed)) return true;
    const int64_t deadline = deadline_ns.load(std::memory_order_relaxed);
    if (deadline != 0 && NowNs() >= deadline) {
      requested.store(true, std::memory_order_relaxed);
      return true;
    }
    if (parent != nullptr && parent->StopRequested()) {
      requested.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};
}  // namespace stop_internal

class StopToken {
 public:
  StopToken() = default;

  // True iff this token is connected to a StopSource (i.e. polling it could
  // ever return true). Lets hot loops skip the amortized poll entirely.
  bool CanStop() const { return state_ != nullptr; }

  // True once stop has been requested, the deadline has passed, or a linked
  // parent source stopped. Sticky: after any trigger fires once, subsequent
  // polls are a relaxed load.
  bool StopRequested() const {
    return state_ != nullptr && state_->StopRequested();
  }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<stop_internal::StopState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<stop_internal::StopState> state_;
};

class StopSource {
 public:
  StopSource() : state_(std::make_shared<stop_internal::StopState>()) {}

  // A source linked to `parent`: its tokens report stop when either this
  // source stops (RequestStop / its own deadline) or `parent` does. An
  // empty parent token yields a plain unlinked source, so callers can link
  // unconditionally. Lets a server combine one shared shutdown source with
  // a per-request deadline without the census having to poll two tokens.
  explicit StopSource(const StopToken& parent)
      : state_(std::make_shared<stop_internal::StopState>()) {
    state_->parent = parent.state_;
  }

  void RequestStop() {
    state_->requested.store(true, std::memory_order_relaxed);
  }

  // Arms (or re-arms) a deadline `seconds` of wall-clock time from now;
  // tokens start reporting stop once it passes.
  void SetDeadlineAfter(double seconds) {
    state_->deadline_ns.store(
        stop_internal::StopState::NowNs() +
            static_cast<int64_t>(seconds * 1e9),
        std::memory_order_relaxed);
  }

  bool StopRequested() const { return Token().StopRequested(); }

  StopToken Token() const { return StopToken(state_); }

 private:
  std::shared_ptr<stop_internal::StopState> state_;
};

}  // namespace hsgf::util

#endif  // HSGF_UTIL_STOP_TOKEN_H_
