#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hsgf::util {

namespace {

std::atomic<CheckFailureHandler> g_handler{nullptr};

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

namespace check_internal {

void CheckFailure(const char* file, int line, const std::string& message) {
  CheckFailureHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(file, line, message);  // may throw to unwind out of the check
  }
  std::fprintf(stderr, "%s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_internal
}  // namespace hsgf::util
