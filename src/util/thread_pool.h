#ifndef HSGF_UTIL_THREAD_POOL_H_
#define HSGF_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hsgf::util {

// Fixed-size worker pool. The subgraph census parallelizes by start node
// (paper §3.2: the edge list is shared read-only, per-thread state is O(V),
// so memory is O(tV + E) for t threads).
//
// Shutdown ordering: destruction *drains* the queue deterministically —
// every task submitted before the destructor ran is executed to completion
// before the workers join, never silently dropped (callers may rely on
// side effects of fire-and-forget tasks). Submitting from another thread
// concurrently with destruction is a caller bug and trips an HSGF_CHECK
// rather than racing.
class ThreadPool {
 public:
  // Creates a pool with `num_threads` workers. `num_threads == 0` selects
  // the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs every queued task to completion, then joins the workers.
  ~ThreadPool();

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues a task for asynchronous execution. Must not be called once
  // destruction has begun.
  void Submit(std::function<void()> task) HSGF_EXCLUDES(mutex_);

  // Blocks until every submitted task has finished.
  void Wait() HSGF_EXCLUDES(mutex_);

 private:
  void WorkerLoop() HSGF_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar task_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ HSGF_GUARDED_BY(mutex_);
  int64_t in_flight_ HSGF_GUARDED_BY(mutex_) = 0;  // queued + running tasks
  bool shutting_down_ HSGF_GUARDED_BY(mutex_) = false;
};

// Runs body(i) for every i in [0, count), distributing dynamically over the
// pool's workers in chunks. Blocks until complete. `body` must be safe to
// call concurrently for distinct i.
void ParallelFor(ThreadPool& pool, int64_t count,
                 const std::function<void(int64_t)>& body,
                 int64_t chunk_size = 1);

}  // namespace hsgf::util

#endif  // HSGF_UTIL_THREAD_POOL_H_
