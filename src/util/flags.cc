#include "util/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace hsgf::util {

bool ParseLong(const char* s, long* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseDouble(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = value;
  return true;
}

void FlagParser::AddBool(const char* name, bool* out) {
  Flag flag{};
  flag.name = name;
  flag.kind = Kind::kBool;
  flag.bool_out = out;
  flags_.push_back(flag);
}

void FlagParser::AddString(const char* name, const char** out) {
  Flag flag{};
  flag.name = name;
  flag.kind = Kind::kString;
  flag.string_out = out;
  flags_.push_back(flag);
}

void FlagParser::AddLong(const char* name, long* out, long min_value,
                         long max_value) {
  Flag flag{};
  flag.name = name;
  flag.kind = Kind::kLong;
  flag.long_out = out;
  flag.long_min = min_value;
  flag.long_max = max_value;
  flags_.push_back(flag);
}

void FlagParser::AddDouble(const char* name, double* out, double min_value,
                           double max_value, bool exclusive_min) {
  Flag flag{};
  flag.name = name;
  flag.kind = Kind::kDouble;
  flag.double_out = out;
  flag.double_min = min_value;
  flag.double_max = max_value;
  flag.exclusive_min = exclusive_min;
  flags_.push_back(flag);
}

bool FlagParser::Parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const Flag* flag = nullptr;
    for (const Flag& candidate : flags_) {
      if (std::strcmp(arg, candidate.name) == 0) {
        flag = &candidate;
        break;
      }
    }
    if (flag == nullptr) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg);
      return false;
    }
    if (flag->kind == Kind::kBool) {
      *flag->bool_out = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: flag %s requires a value\n", arg);
      return false;
    }
    const char* value = argv[++i];
    switch (flag->kind) {
      case Kind::kString:
        *flag->string_out = value;
        break;
      case Kind::kLong: {
        long parsed = 0;
        if (!ParseLong(value, &parsed) || parsed < flag->long_min ||
            parsed > flag->long_max) {
          std::fprintf(stderr, "error: invalid %s value '%s'\n", flag->name,
                       value);
          return false;
        }
        *flag->long_out = parsed;
        break;
      }
      case Kind::kDouble: {
        double parsed = 0.0;
        if (!ParseDouble(value, &parsed) || parsed < flag->double_min ||
            parsed > flag->double_max ||
            (flag->exclusive_min && parsed == flag->double_min)) {
          std::fprintf(stderr, "error: invalid %s value '%s'\n", flag->name,
                       value);
          return false;
        }
        *flag->double_out = parsed;
        break;
      }
      case Kind::kBool:
        HSGF_CHECK(false) << "boolean flag reached the value path";
    }
  }
  return true;
}

}  // namespace hsgf::util
