#ifndef HSGF_UTIL_CHECK_H_
#define HSGF_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace hsgf::util {

// Fatal invariant checks.
//
//   HSGF_CHECK(frontier_size <= budget) << "node " << v;
//   HSGF_CHECK_EQ(offsets.back(), blob.size());
//   HSGF_DCHECK_LT(col, num_cols());
//
// HSGF_CHECK* is always on and fails the process (or calls the installed
// failure handler) with file:line, the stringified condition, the operand
// values for the comparison forms, and any message streamed onto the macro.
// HSGF_DCHECK* is the same in debug builds and compiles to nothing — no
// argument evaluation, no branch — when NDEBUG is defined, so hot loops
// (the census recursion) pay zero cost in Release.
//
// The failure path may evaluate the checked expressions a second time to
// print them; do not put side effects in check arguments.
//
// Failure handling is hookable so tests can observe (and survive) a failed
// check: the installed handler may throw to unwind out of the failing
// expression. If no handler is installed, or the handler returns, the
// message goes to stderr and the process aborts.

// Receives the failing site and the fully formatted message. Installed
// handlers run on the failing thread; throwing from one is allowed (and is
// how tests intercept failures).
using CheckFailureHandler = void (*)(const char* file, int line,
                                     const std::string& message);

// Installs `handler` (nullptr restores the abort default) and returns the
// previously installed handler.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

namespace check_internal {

// Reports a failed check. Never returns normally: either the installed
// handler throws, or the process aborts.
[[noreturn]] void CheckFailure(const char* file, int line,
                               const std::string& message);

// Collects the streamed message; the destructor (end of the full check
// expression) fires the failure. Only ever constructed on the failure path.
class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* summary)
      : file_(file), line_(line) {
    stream_ << summary;
  }
  CheckStream(const CheckStream&) = delete;
  CheckStream& operator=(const CheckStream&) = delete;
  ~CheckStream() noexcept(false) { CheckFailure(file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Lower precedence than << so streamed messages bind to the stream first;
// makes the failure arm of the ternary a void expression.
struct Voidify {
  void operator&(std::ostream&) const {}
};

// Integral characters print as numbers in failure messages, not glyphs.
template <typename T>
const T& Printable(const T& value) {
  return value;
}
inline int Printable(char value) { return value; }
inline int Printable(signed char value) { return value; }
inline unsigned int Printable(unsigned char value) { return value; }

}  // namespace check_internal
}  // namespace hsgf::util

#define HSGF_CHECK(condition)                                      \
  (condition)                                                      \
      ? (void)0                                                    \
      : ::hsgf::util::check_internal::Voidify() &                  \
            ::hsgf::util::check_internal::CheckStream(             \
                __FILE__, __LINE__, "HSGF_CHECK(" #condition ") failed ") \
                .stream()

#define HSGF_INTERNAL_CHECK_OP(a, op, b)                                     \
  ((a)op(b)) ? (void)0                                                       \
             : ::hsgf::util::check_internal::Voidify() &                     \
                   ::hsgf::util::check_internal::CheckStream(                \
                       __FILE__, __LINE__,                                   \
                       "HSGF_CHECK(" #a " " #op " " #b ") failed ")          \
                           .stream()                                         \
                       << "(" << ::hsgf::util::check_internal::Printable(a)  \
                       << " vs. "                                            \
                       << ::hsgf::util::check_internal::Printable(b) << ") "

#define HSGF_CHECK_EQ(a, b) HSGF_INTERNAL_CHECK_OP(a, ==, b)
#define HSGF_CHECK_NE(a, b) HSGF_INTERNAL_CHECK_OP(a, !=, b)
#define HSGF_CHECK_LT(a, b) HSGF_INTERNAL_CHECK_OP(a, <, b)
#define HSGF_CHECK_LE(a, b) HSGF_INTERNAL_CHECK_OP(a, <=, b)
#define HSGF_CHECK_GT(a, b) HSGF_INTERNAL_CHECK_OP(a, >, b)
#define HSGF_CHECK_GE(a, b) HSGF_INTERNAL_CHECK_OP(a, >=, b)

// 1 when HSGF_DCHECK* is live (debug builds), 0 when it compiles away.
#ifdef NDEBUG
#define HSGF_DCHECK_IS_ON 0
#else
#define HSGF_DCHECK_IS_ON 1
#endif

#if HSGF_DCHECK_IS_ON
#define HSGF_DCHECK(condition) HSGF_CHECK(condition)
#define HSGF_DCHECK_EQ(a, b) HSGF_CHECK_EQ(a, b)
#define HSGF_DCHECK_NE(a, b) HSGF_CHECK_NE(a, b)
#define HSGF_DCHECK_LT(a, b) HSGF_CHECK_LT(a, b)
#define HSGF_DCHECK_LE(a, b) HSGF_CHECK_LE(a, b)
#define HSGF_DCHECK_GT(a, b) HSGF_CHECK_GT(a, b)
#define HSGF_DCHECK_GE(a, b) HSGF_CHECK_GE(a, b)
#else
// `while (false)` keeps the operands type-checked (no bit-rot) but emits no
// code and evaluates nothing, even at -O0.
#define HSGF_DCHECK(condition) \
  while (false) HSGF_CHECK(condition)
#define HSGF_DCHECK_EQ(a, b) \
  while (false) HSGF_CHECK_EQ(a, b)
#define HSGF_DCHECK_NE(a, b) \
  while (false) HSGF_CHECK_NE(a, b)
#define HSGF_DCHECK_LT(a, b) \
  while (false) HSGF_CHECK_LT(a, b)
#define HSGF_DCHECK_LE(a, b) \
  while (false) HSGF_CHECK_LE(a, b)
#define HSGF_DCHECK_GT(a, b) \
  while (false) HSGF_CHECK_GT(a, b)
#define HSGF_DCHECK_GE(a, b) \
  while (false) HSGF_CHECK_GE(a, b)
#endif

#endif  // HSGF_UTIL_CHECK_H_
