#ifndef HSGF_UTIL_FLAT_COUNT_MAP_H_
#define HSGF_UTIL_FLAT_COUNT_MAP_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace hsgf::util {

// Open-addressing hash map from uint64 keys to int64 counts, specialized for
// the census inner loop (increment-or-insert). Linear probing over a
// power-of-two table; no tombstones (no erase). Key 0 is handled through a
// dedicated slot so the table can use 0 as the empty sentinel. Keys and
// counts are stored interleaved so the common hit touches one cache line,
// and Prefetch(key) lets callers overlap that line's load with other work
// (the census issues it before the label-grouping scan).
class FlatCountMap {
 public:
  explicit FlatCountMap(size_t initial_capacity = 64) {
    size_t capacity = 16;
    while (capacity < initial_capacity) capacity *= 2;
    slots_.assign(capacity, Slot{0, 0});
    mask_ = capacity - 1;
  }

  size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }

  // counts[key] += delta (inserting if absent).
  void Add(uint64_t key, int64_t delta) {
    if (key == 0) {
      if (!has_zero_) has_zero_ = true;
      zero_count_ += delta;
      return;
    }
    Slot& slot = slots_[Probe(key)];
    if (slot.key == 0) {
      slot.key = key;
      slot.value = delta;
      if (++size_ * 10 >= slots_.size() * 7) Grow();
    } else {
      slot.value += delta;
    }
  }

  // Starts pulling key's home slot into cache; a hint only, no effect on
  // contents. Callers that know the key ahead of the Add use this to hide
  // the table's (usually cache-missing) load under unrelated work.
  void Prefetch(uint64_t key) const {
    const size_t home = static_cast<size_t>(Scramble(key) >> 32) & mask_;
    __builtin_prefetch(&slots_[home]);
  }

  // Returns the count for key, or 0 if absent.
  int64_t Get(uint64_t key) const {
    if (key == 0) return has_zero_ ? zero_count_ : 0;
    const Slot& slot = slots_[Probe(key)];
    return slot.key == key ? slot.value : 0;
  }

  bool Contains(uint64_t key) const {
    if (key == 0) return has_zero_;
    return slots_[Probe(key)].key == key;
  }

  // Invokes fn(key, count) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_zero_) fn(uint64_t{0}, zero_count_);
    for (const Slot& slot : slots_) {
      if (slot.key != 0) fn(slot.key, slot.value);
    }
  }

  // True iff both maps hold exactly the same (key, count) entries. Layout-
  // independent: tables of different capacities (or insertion orders)
  // compare equal when their contents match. Used by the differential
  // census tests to compare count maps built by different enumerators.
  bool Equals(const FlatCountMap& other) const {
    if (size() != other.size()) return false;
    bool equal = true;
    ForEach([&](uint64_t key, int64_t count) {
      if (count != other.Get(key)) equal = false;
    });
    return equal;
  }

  void Clear() {
    std::fill(slots_.begin(), slots_.end(), Slot{0, 0});
    size_ = 0;
    has_zero_ = false;
    zero_count_ = 0;
  }

 private:
  struct Slot {
    uint64_t key;
    int64_t value;
  };

  static uint64_t Scramble(uint64_t key) {
    // Fibonacci multiplicative scrambling; keys are already well mixed but
    // this guards against adversarial low-bit structure.
    return key * 0x9e3779b97f4a7c15ULL;
  }

  size_t Probe(uint64_t key) const {
    size_t slot = static_cast<size_t>(Scramble(key) >> 32) & mask_;
    while (slots_[slot].key != 0 && slots_[slot].key != key) {
      slot = (slot + 1) & mask_;
    }
    return slot;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{0, 0});
    mask_ = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.key == 0) continue;
      slots_[Probe(slot.key)] = slot;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t mask_ = 0;
  bool has_zero_ = false;
  int64_t zero_count_ = 0;
};

}  // namespace hsgf::util

#endif  // HSGF_UTIL_FLAT_COUNT_MAP_H_
