#ifndef HSGF_UTIL_FLAT_COUNT_MAP_H_
#define HSGF_UTIL_FLAT_COUNT_MAP_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace hsgf::util {

// Open-addressing hash map from uint64 keys to int64 counts, specialized for
// the census inner loop (increment-or-insert). Linear probing over a
// power-of-two table; no tombstones (no erase). Key 0 is handled through a
// dedicated slot so the table can use 0 as the empty sentinel.
class FlatCountMap {
 public:
  explicit FlatCountMap(size_t initial_capacity = 64) {
    size_t capacity = 16;
    while (capacity < initial_capacity) capacity *= 2;
    keys_.assign(capacity, 0);
    values_.assign(capacity, 0);
    mask_ = capacity - 1;
  }

  size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }

  // counts[key] += delta (inserting if absent).
  void Add(uint64_t key, int64_t delta) {
    if (key == 0) {
      if (!has_zero_) has_zero_ = true;
      zero_count_ += delta;
      return;
    }
    size_t slot = Probe(key);
    if (keys_[slot] == 0) {
      keys_[slot] = key;
      values_[slot] = delta;
      if (++size_ * 10 >= keys_.size() * 7) Grow();
    } else {
      values_[slot] += delta;
    }
  }

  // Returns the count for key, or 0 if absent.
  int64_t Get(uint64_t key) const {
    if (key == 0) return has_zero_ ? zero_count_ : 0;
    size_t slot = Probe(key);
    return keys_[slot] == key ? values_[slot] : 0;
  }

  bool Contains(uint64_t key) const {
    if (key == 0) return has_zero_;
    return keys_[Probe(key)] == key;
  }

  // Invokes fn(key, count) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_zero_) fn(uint64_t{0}, zero_count_);
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != 0) fn(keys_[i], values_[i]);
    }
  }

  // True iff both maps hold exactly the same (key, count) entries. Layout-
  // independent: tables of different capacities (or insertion orders)
  // compare equal when their contents match. Used by the differential
  // census tests to compare count maps built by different enumerators.
  bool Equals(const FlatCountMap& other) const {
    if (size() != other.size()) return false;
    bool equal = true;
    ForEach([&](uint64_t key, int64_t count) {
      if (count != other.Get(key)) equal = false;
    });
    return equal;
  }

  void Clear() {
    std::fill(keys_.begin(), keys_.end(), 0);
    size_ = 0;
    has_zero_ = false;
    zero_count_ = 0;
  }

 private:
  static uint64_t Scramble(uint64_t key) {
    // Fibonacci multiplicative scrambling; keys are already well mixed but
    // this guards against adversarial low-bit structure.
    return key * 0x9e3779b97f4a7c15ULL;
  }

  size_t Probe(uint64_t key) const {
    size_t slot = static_cast<size_t>(Scramble(key) >> 32) & mask_;
    while (keys_[slot] != 0 && keys_[slot] != key) slot = (slot + 1) & mask_;
    return slot;
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int64_t> old_values = std::move(values_);
    keys_.assign(old_keys.size() * 2, 0);
    values_.assign(old_values.size() * 2, 0);
    mask_ = keys_.size() - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == 0) continue;
      size_t slot = Probe(old_keys[i]);
      keys_[slot] = old_keys[i];
      values_[slot] = old_values[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<int64_t> values_;
  size_t size_ = 0;
  size_t mask_ = 0;
  bool has_zero_ = false;
  int64_t zero_count_ = 0;
};

}  // namespace hsgf::util

#endif  // HSGF_UTIL_FLAT_COUNT_MAP_H_
