#ifndef HSGF_UTIL_LRU_CACHE_H_
#define HSGF_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hsgf::util {

// Thread-safe LRU cache, sharded by key hash so concurrent readers on
// different keys do not serialize on one mutex (the serving layer fronts
// on-demand censuses with this; a census is ~10^4-10^6x the cost of a probe,
// so per-shard locking is plenty). Each shard is an intrusive-order LRU:
// a doubly-linked list in recency order plus an index into it.
//
// Values are returned by copy — entries can be evicted by another thread the
// moment the shard lock is released, so references would dangle.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  // `capacity` is the total entry budget, split evenly across shards (each
  // shard holds at least one entry). `num_shards` is rounded up to 1.
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8) {
    if (num_shards == 0) num_shards = 1;
    if (num_shards > capacity && capacity > 0) num_shards = capacity;
    const size_t per_shard =
        capacity == 0 ? 0 : (capacity + num_shards - 1) / num_shards;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  // Returns a copy of the cached value and refreshes its recency, or
  // std::nullopt on miss (capacity 0 always misses).
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardOf(key);
    MutexLock lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->second;
  }

  // Inserts or overwrites; the entry becomes most recent. Evicts the shard's
  // least recent entry when over budget.
  void Put(const Key& key, Value value) {
    Shard& shard = ShardOf(key);
    MutexLock lock(shard.mutex);
    if (shard.capacity == 0) return;
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.order.begin());
    if (shard.order.size() > shard.capacity) {
      shard.index.erase(shard.order.back().first);
      shard.order.pop_back();
      ++shard.evictions;
    }
  }

  // Removes the entry for `key` if present; returns whether it was. The
  // serving layer uses this for targeted invalidation of dirty roots after a
  // graph update.
  bool Erase(const Key& key) {
    Shard& shard = ShardOf(key);
    MutexLock lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.order.erase(it->second);
    shard.index.erase(it);
    return true;
  }

  // Drops every entry (capacity and eviction counters are untouched).
  void Clear() {
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mutex);
      shard->index.clear();
      shard->order.clear();
    }
  }

  // Current entry count (summed across shards; approximate under writes).
  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mutex);
      total += shard->order.size();
    }
    return total;
  }

  // Total entry budget across shards.
  size_t capacity() const {
    size_t total = 0;
    for (const auto& shard : shards_) total += shard->capacity;
    return total;
  }

  // Evictions since construction (summed across shards).
  int64_t evictions() const {
    int64_t total = 0;
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mutex);
      total += shard->evictions;
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    explicit Shard(size_t capacity_in) : capacity(capacity_in) {}

    const size_t capacity;
    mutable Mutex mutex;
    // front = most recent
    std::list<std::pair<Key, Value>> order HSGF_GUARDED_BY(mutex);
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
        index HSGF_GUARDED_BY(mutex);
    int64_t evictions HSGF_GUARDED_BY(mutex) = 0;
  };

  Shard& ShardOf(const Key& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  // unique_ptr: shards are immovable (mutex) but the vector is built once.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hsgf::util

#endif  // HSGF_UTIL_LRU_CACHE_H_
