#include "util/resource.h"

#include <sys/resource.h>

namespace hsgf::util {

int64_t PeakRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux/BSD
#endif
}

}  // namespace hsgf::util
