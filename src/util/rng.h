#ifndef HSGF_UTIL_RNG_H_
#define HSGF_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hsgf::util {

// Splits a 64-bit seed into a well-mixed stream of 64-bit values.
// Used for seeding and as a cheap standalone generator.
// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
// Generators" (SplitMix64 finalizer).
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Deterministic xoshiro256** generator. All stochastic components of the
// library take an explicit seed through this class so that experiments are
// reproducible run-to-run and across platforms.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed) { Reseed(seed); }

  // Re-initializes the state from `seed` via SplitMix64, per the xoshiro
  // authors' recommendation (avoids all-zero and low-entropy states).
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  // Returns the next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  // Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  // multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double UniformReal() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    return lo + (hi - lo) * UniformReal();
  }

  // Standard normal deviate (Box–Muller with caching).
  double Normal();

  // Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  // Exponential deviate with the given rate (lambda > 0).
  double Exponential(double rate);

  // Poisson deviate with the given mean (inversion for small means,
  // normal approximation for large means).
  int Poisson(double mean);

  // Pareto-tailed deviate: xmin * U^(-1/alpha). Used for skewed degree and
  // productivity distributions in the synthetic networks.
  double Pareto(double xmin, double alpha);

  // Zipf-like integer in [0, n): probability of k proportional to
  // (k + 1)^(-alpha). Precomputation-free rejection-inversion would be
  // overkill for our sizes; this uses cached CDF sampling per (n, alpha).
  int Zipf(int n, double alpha);

  // Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Draws an index from the discrete distribution given by non-negative
  // weights (linear scan; use embed::AliasTable for repeated draws).
  int Discrete(const std::vector<double>& weights);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
  // Cache for Zipf sampling: CDF for the most recent (n, alpha) pair.
  int zipf_n_ = -1;
  double zipf_alpha_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace hsgf::util

#endif  // HSGF_UTIL_RNG_H_
