#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace hsgf::util {

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply into a 128-bit product and reject the biased
  // low fringe.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform on two uniforms in (0, 1].
  double u1 = 1.0 - UniformReal();
  double u2 = UniformReal();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Exponential(double rate) {
  assert(rate > 0);
  return -std::log(1.0 - UniformReal()) / rate;
}

int Rng::Poisson(double mean) {
  assert(mean >= 0);
  if (mean == 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    double limit = std::exp(-mean);
    double product = UniformReal();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= UniformReal();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  double value = std::round(Normal(mean, std::sqrt(mean)));
  return value < 0 ? 0 : static_cast<int>(value);
}

double Rng::Pareto(double xmin, double alpha) {
  assert(xmin > 0 && alpha > 0);
  double u = 1.0 - UniformReal();  // in (0, 1]
  return xmin * std::pow(u, -1.0 / alpha);
}

int Rng::Zipf(int n, double alpha) {
  assert(n > 0);
  if (n == 1) return 0;
  if (n != zipf_n_ || alpha != zipf_alpha_) {
    zipf_n_ = n;
    zipf_alpha_ = alpha;
    zipf_cdf_.resize(n);
    double total = 0.0;
    for (int k = 0; k < n; ++k) {
      total += std::pow(static_cast<double>(k + 1), -alpha);
      zipf_cdf_[k] = total;
    }
    for (int k = 0; k < n; ++k) zipf_cdf_[k] /= total;
  }
  double u = UniformReal();
  // Binary search for the first CDF entry >= u.
  int lo = 0;
  int hi = n - 1;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(k >= 0 && k <= n);
  // Partial Fisher–Yates over an index array.
  std::vector<int> indices(n);
  for (int i = 0; i < n; ++i) indices[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

int Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0);
  double target = UniformReal() * total;
  double running = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    running += weights[i];
    if (target < running) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace hsgf::util
