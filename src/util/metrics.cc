#include "util/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "util/mutex.h"

namespace hsgf::util {

namespace metrics_internal {

int BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<int>(value);
  const uint64_t u = static_cast<uint64_t>(value);
  const int octave = 63 - std::countl_zero(u);  // floor(log2), >= kMinOctave
  if (octave > kMaxOctave) return kNumBuckets - 1;
  const int sub =
      static_cast<int>((u >> (octave - kMinOctave)) & (kSubBuckets - 1));
  return kSubBuckets + (octave - kMinOctave) * kSubBuckets + sub;
}

std::pair<int64_t, int64_t> BucketBounds(int index) {
  if (index < kSubBuckets) return {index, index + 1};
  const int b = index - kSubBuckets;
  const int octave = b / kSubBuckets + kMinOctave;
  const int sub = b % kSubBuckets;
  const int shift = octave - kMinOctave;
  const int64_t lower = static_cast<int64_t>(kSubBuckets + sub) << shift;
  const int64_t width = int64_t{1} << shift;
  return {lower, lower + width};
}

}  // namespace metrics_internal

namespace {

constexpr int kKindShift = 28;
constexpr int32_t kBaseMask = (int32_t{1} << kKindShift) - 1;

int BaseOf(MetricId id) { return static_cast<int>(id & kBaseMask); }
[[maybe_unused]] int KindBitsOf(MetricId id) {
  return static_cast<int>(id >> kKindShift);
}

uint64_t NextRegistryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendJsonDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void AppendJsonInt(std::string& out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

// One thread's private slot array. Slots are written only by the owning
// thread (relaxed load + store — a plain add on mainstream hardware) and
// read by Snapshot() under the registry mutex; relaxed atomics keep that
// cross-thread read race-free without any synchronization on the hot path.
struct MetricsRegistry::Shard {
  static constexpr int kCapacity = 4096;
  std::array<std::atomic<int64_t>, kCapacity> slots{};
};

MetricsRegistry::MetricsRegistry() : id_(NextRegistryId()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricId MetricsRegistry::Register(const std::string& name, Kind kind,
                                   int slots_needed) {
  MutexLock lock(mutex_);
  for (size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name != name) continue;
    if (metrics_[i].kind != kind) {
      throw std::runtime_error("metric '" + name +
                               "' re-registered as a different kind");
    }
    return static_cast<MetricId>(
        (static_cast<int32_t>(metrics_[i].kind) << kKindShift) |
        metrics_[i].base);
  }
  int base;
  if (kind == Kind::kGauge) {
    base = static_cast<int>(gauges_.size());
    gauges_.emplace_back(0.0);
  } else if (kind == Kind::kSpan) {
    base = static_cast<int>(spans_.size());
    spans_.emplace_back();
  } else {
    if (next_slot_ + slots_needed > Shard::kCapacity) {
      throw std::runtime_error("MetricsRegistry slot capacity exhausted");
    }
    base = next_slot_;
    next_slot_ += slots_needed;
  }
  metrics_.push_back({name, kind, base});
  return static_cast<MetricId>((static_cast<int32_t>(kind) << kKindShift) |
                               base);
}

MetricId MetricsRegistry::Counter(const std::string& name) {
  return Register(name, Kind::kCounter, 1);
}

MetricId MetricsRegistry::Gauge(const std::string& name) {
  return Register(name, Kind::kGauge, 0);
}

MetricId MetricsRegistry::Histogram(const std::string& name) {
  // Layout: [count, sum, max, bucket 0 .. bucket kNumBuckets-1].
  return Register(name, Kind::kHistogram, 3 + metrics_internal::kNumBuckets);
}

MetricId MetricsRegistry::Span(const std::string& name) {
  return Register(name, Kind::kSpan, 0);
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  // Per-thread cache of (registry id -> shard). The single-registry fast
  // path is two loads and a compare. Registry ids are process-unique and
  // never reused, so stale entries for dead registries can never be
  // returned; the shards themselves are owned by the registry, so no
  // cleanup is needed on thread exit.
  struct Cache {
    uint64_t id = 0;
    Shard* shard = nullptr;
    std::vector<std::pair<uint64_t, Shard*>> others;
  };
  thread_local Cache cache;
  if (cache.id == id_) return *cache.shard;
  for (size_t i = 0; i < cache.others.size(); ++i) {
    if (cache.others[i].first != id_) continue;
    // Promote to the fast slot, demoting the previous occupant.
    Shard* found = cache.others[i].second;
    if (cache.shard != nullptr) {
      cache.others[i] = {cache.id, cache.shard};
    } else {
      cache.others[i] = cache.others.back();
      cache.others.pop_back();
    }
    cache.id = id_;
    cache.shard = found;
    return *found;
  }
  Shard* shard;
  {
    MutexLock lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
  }
  if (cache.shard != nullptr) cache.others.emplace_back(cache.id, cache.shard);
  cache.id = id_;
  cache.shard = shard;
  return *shard;
}

void MetricsRegistry::Increment(MetricId counter, int64_t delta) {
  if (counter < 0) return;
  assert(KindBitsOf(counter) == static_cast<int>(Kind::kCounter));
  auto& slot = LocalShard().slots[BaseOf(counter)];
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void MetricsRegistry::SetGauge(MetricId gauge, double value) {
  if (gauge < 0) return;
  assert(KindBitsOf(gauge) == static_cast<int>(Kind::kGauge));
  gauges_[BaseOf(gauge)].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::Observe(MetricId histogram, int64_t value) {
  if (histogram < 0) return;
  assert(KindBitsOf(histogram) == static_cast<int>(Kind::kHistogram));
  if (value < 0) value = 0;
  Shard& shard = LocalShard();
  const int base = BaseOf(histogram);
  auto bump = [&shard](int slot, int64_t delta) {
    auto& s = shard.slots[slot];
    s.store(s.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  };
  bump(base + 0, 1);      // count
  bump(base + 1, value);  // sum
  auto& max_slot = shard.slots[base + 2];
  if (value > max_slot.load(std::memory_order_relaxed)) {
    max_slot.store(value, std::memory_order_relaxed);
  }
  bump(base + 3 + metrics_internal::BucketIndex(value), 1);
}

void MetricsRegistry::AddSpanSeconds(MetricId span, double seconds) {
  if (span < 0) return;
  assert(KindBitsOf(span) == static_cast<int>(Kind::kSpan));
  MutexLock lock(mutex_);
  SpanData& data = spans_[BaseOf(span)];
  data.seconds += seconds;
  data.count += 1;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  // Alias bound while locked: the sum_slot lambda body is analyzed as a
  // separate function, so it reads through the local reference instead of
  // touching the guarded member directly.
  const std::vector<std::unique_ptr<Shard>>& shards = shards_;
  auto sum_slot = [&shards](int slot) {
    int64_t total = 0;
    for (const auto& shard : shards) {
      total += shard->slots[slot].load(std::memory_order_relaxed);
    }
    return total;
  };
  for (const MetricInfo& info : metrics_) {
    switch (info.kind) {
      case Kind::kCounter:
        snap.counters.emplace_back(info.name, sum_slot(info.base));
        break;
      case Kind::kGauge:
        snap.gauges.emplace_back(
            info.name, gauges_[info.base].load(std::memory_order_relaxed));
        break;
      case Kind::kSpan: {
        const SpanData& data = spans_[info.base];
        snap.spans.push_back({info.name, data.seconds, data.count});
        break;
      }
      case Kind::kHistogram: {
        HistogramSnapshot hist;
        hist.name = info.name;
        hist.count = sum_slot(info.base + 0);
        hist.sum = sum_slot(info.base + 1);
        for (const auto& shard : shards_) {
          hist.max = std::max(
              hist.max,
              shard->slots[info.base + 2].load(std::memory_order_relaxed));
        }
        for (int b = 0; b < metrics_internal::kNumBuckets; ++b) {
          int64_t count = sum_slot(info.base + 3 + b);
          if (count == 0) continue;
          auto [lower, upper] = metrics_internal::BucketBounds(b);
          hist.buckets.push_back({lower, upper, count});
        }
        snap.histograms.push_back(std::move(hist));
        break;
      }
    }
  }
  auto by_first = [](const auto& a, const auto& b) { return a.first < b.first; };
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_first);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_first);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  std::sort(snap.spans.begin(), snap.spans.end(), by_name);
  return snap;
}

int64_t HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double target = p / 100.0 * static_cast<double>(count);
  int64_t cumulative = 0;
  for (const Bucket& bucket : buckets) {
    cumulative += bucket.count;
    if (static_cast<double>(cumulative) >= target) {
      return std::min(bucket.upper, max);
    }
  }
  return max;
}

int64_t MetricsSnapshot::Counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::Gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::Histogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const SpanSnapshot* MetricsSnapshot::Span(const std::string& name) const {
  for (const SpanSnapshot& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(out, counters[i].first);
    out += ": ";
    AppendJsonInt(out, counters[i].second);
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(out, gauges[i].first);
    out += ": ";
    AppendJsonDouble(out, gauges[i].second);
  }
  out += "\n  },\n  \"spans\": {";
  for (size_t i = 0; i < spans.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(out, spans[i].name);
    out += ": {\"seconds\": ";
    AppendJsonDouble(out, spans[i].seconds);
    out += ", \"count\": ";
    AppendJsonInt(out, spans[i].count);
    out += "}";
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(out, h.name);
    out += ": {\"count\": ";
    AppendJsonInt(out, h.count);
    out += ", \"sum\": ";
    AppendJsonInt(out, h.sum);
    out += ", \"max\": ";
    AppendJsonInt(out, h.max);
    out += ", \"mean\": ";
    AppendJsonDouble(out, h.Mean());
    out += ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) out += ", ";
      out += "{\"lo\": ";
      AppendJsonInt(out, h.buckets[b].lower);
      out += ", \"hi\": ";
      AppendJsonInt(out, h.buckets[b].upper);
      out += ", \"count\": ";
      AppendJsonInt(out, h.buckets[b].count);
      out += "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace hsgf::util
