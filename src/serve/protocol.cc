#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace hsgf::serve {

namespace {

// Append-only little-endian writer over a std::string.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  void PutRaw(const void* data, size_t size) {
    out_->append(static_cast<const char*>(data), size);
  }

  std::string* out_;
};

// Bounds-checked little-endian reader; every getter returns false once the
// payload is exhausted, so decoders fail closed on short frames.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetI32(int32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetF64(double* v) { return GetRaw(v, sizeof(*v)); }

  bool GetString(std::string* s) {
    uint32_t length = 0;
    if (!GetU32(&length) || length > Remaining()) return false;
    s->assign(reinterpret_cast<const char*>(data_.data() + pos_), length);
    pos_ += length;
    return true;
  }

  size_t Remaining() const {
    HSGF_DCHECK_LE(pos_, data_.size())
        << "wire reader cursor ran past the frame";
    return data_.size() - pos_;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool GetRaw(void* out, size_t size) {
    if (Remaining() < size) return false;
    HSGF_DCHECK_LE(pos_ + size, data_.size());
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// Reads exactly `size` bytes. *at_start distinguishes a clean EOF (peer
// closed on a frame boundary) from a truncated frame; it is cleared as soon
// as the first byte lands. kFrameTimeout is an SO_RCVTIMEO expiry — the
// stream position is then unknown, so the connection is unusable.
FrameStatus ReadExactly(int fd, void* buffer, size_t size, bool* at_start) {
  auto* bytes = static_cast<char*>(buffer);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = read(fd, bytes + done, size - done);
    if (n == 0) {
      return *at_start ? FrameStatus::kFrameEof : FrameStatus::kFrameError;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return FrameStatus::kFrameTimeout;
      }
      return FrameStatus::kFrameError;
    }
    *at_start = false;
    done += static_cast<size_t>(n);
  }
  return FrameStatus::kFrameOk;
}

bool WriteExactly(int fd, const void* buffer, size_t size) {
  const auto* bytes = static_cast<const char*>(buffer);
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill the
    // process — the router writes to backends whose death is an expected,
    // handled event, and test binaries don't ignore SIGPIPE the way the
    // daemons do. send() only works on sockets; fall back to write() for
    // pipe fds (ENOTSOCK), where closed-reader EPIPE handling is the
    // caller's concern.
    ssize_t n = send(fd, bytes + done, size - done, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = write(fd, bytes + done, size - done);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string EncodeRequest(const Request& request, uint32_t version) {
  std::string payload;
  WireWriter writer(&payload);
  if (version >= kProtocolV2) {
    writer.PutU32(request.request_id);
    writer.PutU32(request.deadline_ms);
  }
  writer.PutU8(static_cast<uint8_t>(request.type));
  switch (request.type) {
    case MessageType::kGetFeatures:
      writer.PutI32(request.node);
      break;
    case MessageType::kTopKEncodings:
      writer.PutU32(request.k);
      break;
    case MessageType::kApplyUpdate:
      // The body is the canonical delta-batch payload, byte-identical to a
      // delta-log record's payload, so a server can log it verbatim.
      payload += stream::EncodeBatchPayload(request.ops);
      break;
    case MessageType::kHello:
      writer.PutU32(request.max_version);
      break;
    case MessageType::kGetFeaturesBatch:
      writer.PutU32(static_cast<uint32_t>(request.batch_nodes.size()));
      for (int32_t node : request.batch_nodes) writer.PutI32(node);
      break;
    case MessageType::kGetVocabulary:
    case MessageType::kStats:
    case MessageType::kShutdown:
    case MessageType::kGetEpoch:
    case MessageType::kGetShardMap:
      break;
  }
  return payload;
}

bool DecodeRequest(std::span<const uint8_t> payload, Request* request,
                   uint32_t version) {
  WireReader reader(payload);
  size_t header_bytes = 0;
  if (version >= kProtocolV2) {
    if (!reader.GetU32(&request->request_id) ||
        !reader.GetU32(&request->deadline_ms)) {
      return false;
    }
    header_bytes = 2 * sizeof(uint32_t);
  } else {
    request->request_id = 0;
    request->deadline_ms = 0;
  }
  uint8_t type = 0;
  if (!reader.GetU8(&type)) return false;
  request->type = static_cast<MessageType>(type);
  switch (request->type) {
    case MessageType::kGetFeatures:
      return reader.GetI32(&request->node) && reader.AtEnd();
    case MessageType::kTopKEncodings:
      return reader.GetU32(&request->k) && reader.AtEnd();
    case MessageType::kApplyUpdate:
      // DecodeBatchPayload is strict (full consumption), so AtEnd holds.
      return stream::DecodeBatchPayload(payload.subspan(header_bytes + 1),
                                        &request->ops);
    case MessageType::kHello:
      return reader.GetU32(&request->max_version) && reader.AtEnd();
    case MessageType::kGetFeaturesBatch: {
      uint32_t n = 0;
      if (!reader.GetU32(&n) || n > kMaxBatchRoots ||
          reader.Remaining() != n * sizeof(int32_t)) {
        return false;
      }
      request->batch_nodes.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!reader.GetI32(&request->batch_nodes[i])) return false;
      }
      return reader.AtEnd();
    }
    case MessageType::kGetVocabulary:
    case MessageType::kStats:
    case MessageType::kShutdown:
    case MessageType::kGetEpoch:
    case MessageType::kGetShardMap:
      return reader.AtEnd();
  }
  return false;  // unknown message type
}

std::string EncodeResponse(MessageType type, const Response& response,
                           uint32_t version) {
  std::string payload;
  WireWriter writer(&payload);
  if (version >= kProtocolV2) writer.PutU32(response.request_id);
  writer.PutU8(static_cast<uint8_t>(response.status));
  if (response.status != StatusCode::kOk) {
    writer.PutString(response.text);
    return payload;
  }
  switch (type) {
    case MessageType::kGetFeatures:
      writer.PutU8(response.source);
      writer.PutU64(response.epoch);
      writer.PutU32(static_cast<uint32_t>(response.values.size()));
      for (double v : response.values) writer.PutF64(v);
      break;
    case MessageType::kGetVocabulary:
      writer.PutU32(static_cast<uint32_t>(response.hashes.size()));
      for (uint64_t h : response.hashes) writer.PutU64(h);
      break;
    case MessageType::kTopKEncodings:
      writer.PutU32(static_cast<uint32_t>(response.entries.size()));
      for (const TopKEntry& entry : response.entries) {
        writer.PutU64(entry.hash);
        writer.PutF64(entry.total);
        writer.PutString(entry.encoding);
      }
      break;
    case MessageType::kStats:
      writer.PutString(response.text);
      break;
    case MessageType::kShutdown:
      break;
    case MessageType::kApplyUpdate:
      writer.PutU64(response.epoch);
      writer.PutU32(response.applied);
      writer.PutU32(response.rejected);
      writer.PutU32(response.dirty_roots);
      writer.PutU32(response.new_columns);
      break;
    case MessageType::kGetEpoch:
      writer.PutU8(response.stream_attached);
      writer.PutU64(response.epoch);
      writer.PutU32(response.num_columns);
      writer.PutU64(response.overlay_rows);
      break;
    case MessageType::kHello:
      writer.PutU32(response.agreed_version);
      break;
    case MessageType::kGetFeaturesBatch:
      writer.PutU32(static_cast<uint32_t>(response.batch.size()));
      for (const BatchEntry& entry : response.batch) {
        writer.PutU8(static_cast<uint8_t>(entry.status));
        if (entry.status == StatusCode::kOk) {
          writer.PutU8(entry.source);
          writer.PutU64(entry.epoch);
          writer.PutU32(static_cast<uint32_t>(entry.values.size()));
          for (double v : entry.values) writer.PutF64(v);
        } else {
          writer.PutString(entry.message);
        }
      }
      break;
    case MessageType::kGetShardMap:
      writer.PutString(response.shard_map_blob);
      break;
  }
  return payload;
}

bool DecodeResponse(MessageType type, std::span<const uint8_t> payload,
                    Response* response, uint32_t version) {
  WireReader reader(payload);
  if (version >= kProtocolV2) {
    if (!reader.GetU32(&response->request_id)) return false;
  } else {
    response->request_id = 0;
  }
  uint8_t status = 0;
  if (!reader.GetU8(&status)) return false;
  response->status = static_cast<StatusCode>(status);
  if (response->status != StatusCode::kOk) {
    return reader.GetString(&response->text) && reader.AtEnd();
  }
  switch (type) {
    case MessageType::kGetFeatures: {
      uint32_t n = 0;
      if (!reader.GetU8(&response->source) || !reader.GetU64(&response->epoch) ||
          !reader.GetU32(&n) || reader.Remaining() != n * sizeof(double)) {
        return false;
      }
      response->values.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!reader.GetF64(&response->values[i])) return false;
      }
      return reader.AtEnd();
    }
    case MessageType::kGetVocabulary: {
      uint32_t n = 0;
      if (!reader.GetU32(&n) || reader.Remaining() != n * sizeof(uint64_t)) {
        return false;
      }
      response->hashes.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!reader.GetU64(&response->hashes[i])) return false;
      }
      return reader.AtEnd();
    }
    case MessageType::kTopKEncodings: {
      uint32_t n = 0;
      if (!reader.GetU32(&n)) return false;
      response->entries.clear();
      for (uint32_t i = 0; i < n; ++i) {
        TopKEntry entry;
        if (!reader.GetU64(&entry.hash) || !reader.GetF64(&entry.total) ||
            !reader.GetString(&entry.encoding)) {
          return false;
        }
        response->entries.push_back(std::move(entry));
      }
      return reader.AtEnd();
    }
    case MessageType::kStats:
      return reader.GetString(&response->text) && reader.AtEnd();
    case MessageType::kShutdown:
      return reader.AtEnd();
    case MessageType::kApplyUpdate:
      return reader.GetU64(&response->epoch) &&
             reader.GetU32(&response->applied) &&
             reader.GetU32(&response->rejected) &&
             reader.GetU32(&response->dirty_roots) &&
             reader.GetU32(&response->new_columns) && reader.AtEnd();
    case MessageType::kGetEpoch:
      return reader.GetU8(&response->stream_attached) &&
             reader.GetU64(&response->epoch) &&
             reader.GetU32(&response->num_columns) &&
             reader.GetU64(&response->overlay_rows) && reader.AtEnd();
    case MessageType::kHello:
      return reader.GetU32(&response->agreed_version) && reader.AtEnd();
    case MessageType::kGetFeaturesBatch: {
      uint32_t n = 0;
      if (!reader.GetU32(&n) || n > kMaxBatchRoots) return false;
      response->batch.clear();
      response->batch.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        BatchEntry entry;
        uint8_t entry_status = 0;
        if (!reader.GetU8(&entry_status)) return false;
        entry.status = static_cast<StatusCode>(entry_status);
        if (entry.status == StatusCode::kOk) {
          uint32_t m = 0;
          if (!reader.GetU8(&entry.source) || !reader.GetU64(&entry.epoch) ||
              !reader.GetU32(&m) || reader.Remaining() < m * sizeof(double)) {
            return false;
          }
          entry.values.resize(m);
          for (uint32_t c = 0; c < m; ++c) {
            if (!reader.GetF64(&entry.values[c])) return false;
          }
        } else if (!reader.GetString(&entry.message)) {
          return false;
        }
        response->batch.push_back(std::move(entry));
      }
      return reader.AtEnd();
    }
    case MessageType::kGetShardMap:
      return reader.GetString(&response->shard_map_blob) && reader.AtEnd();
  }
  return false;
}

bool ReadFrame(int fd, std::string* payload) {
  return ReadFrameStatus(fd, payload) == FrameStatus::kFrameOk;
}

FrameStatus ReadFrameStatus(int fd, std::string* payload) {
  uint32_t length = 0;
  bool at_start = true;
  FrameStatus status = ReadExactly(fd, &length, sizeof(length), &at_start);
  if (status != FrameStatus::kFrameOk) return status;
  if (length > kMaxFrameBytes) return FrameStatus::kFrameError;
  payload->resize(length);
  if (length != 0) {
    // at_start is already false here, so EOF inside the payload reports
    // kFrameError (truncated frame), never kFrameEof.
    status = ReadExactly(fd, payload->data(), length, &at_start);
    if (status != FrameStatus::kFrameOk) return status;
  }
  // The frame cap is the allocation bound the decoders rely on; a frame
  // larger than it must never reach them.
  HSGF_CHECK_LE(payload->size(), kMaxFrameBytes);
  return FrameStatus::kFrameOk;
}

bool WriteFrame(int fd, std::string_view payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size());
  if (length > kMaxFrameBytes) return false;
  return WriteExactly(fd, &length, sizeof(length)) &&
         WriteExactly(fd, payload.data(), payload.size());
}

}  // namespace hsgf::serve
