#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/timer.h"

namespace hsgf::serve {

namespace {

// Latency histogram suffix per message type (indexed by type value - 1).
const char* const kTypeNames[kNumMessageTypes] = {
    "get_features", "get_vocabulary", "top_k_encodings",
    "stats",        "shutdown",       "apply_update",
    "get_epoch",    "hello",          "get_features_batch",
    "get_shard_map"};

int TypeIndex(MessageType type) {
  const int index = static_cast<int>(type) - 1;
  return (index >= 0 && index < kNumMessageTypes) ? index : -1;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Everything that has to be flushed when the loop stops (responses already
// queued, censuses already admitted) gets this long before the loop gives
// up on unresponsive peers and closes them anyway.
constexpr double kDrainDeadlineSeconds = 5.0;

constexpr uint64_t kListenKey = 0;
constexpr uint64_t kWakeKey = 1;

}  // namespace

SocketServer::SocketServer(FeatureService& service,
                           util::MetricsRegistry& metrics, ServerConfig config)
    : service_(service), metrics_(metrics), config_(std::move(config)) {
  connections_ = metrics_.Counter("serve.connections");
  requests_total_ = metrics_.Counter("serve.requests_total");
  bad_requests_ = metrics_.Counter("serve.bad_requests");
  overloaded_ = metrics_.Counter("serve.overloaded");
  request_micros_ = metrics_.Histogram("serve.request_micros");
  for (int i = 0; i < kNumMessageTypes; ++i) {
    request_micros_by_type_[i] =
        metrics_.Histogram(std::string("serve.request_micros.") +
                           kTypeNames[i]);
  }
}

SocketServer::~SocketServer() {
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) close(conn.fd);
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    if (!config_.unix_socket_path.empty()) {
      unlink(config_.unix_socket_path.c_str());
    }
  }
  for (const int fd : wake_fds_) {
    if (fd >= 0) close(fd);
  }
}

bool SocketServer::Start(std::string* error) {
  const bool want_unix = !config_.unix_socket_path.empty();
  const bool want_tcp = config_.tcp_port >= 0;
  if (want_unix == want_tcp) {
    if (error != nullptr) {
      *error = "configure exactly one of unix_socket_path / tcp_port";
    }
    return false;
  }

  if (want_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, config_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    unlink(config_.unix_socket_path.c_str());  // clear a stale socket file
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (error != nullptr) {
        *error = "bind " + config_.unix_socket_path + ": " +
                 std::strerror(errno);
      }
      close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.tcp_port));
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (error != nullptr) {
        *error = "bind 127.0.0.1:" + std::to_string(config_.tcp_port) + ": " +
                 std::strerror(errno);
      }
      close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  // The event loop multiplexes thousands of sockets; a deep backlog rides
  // out accept bursts from load generators opening connections en masse.
  if (listen(listen_fd_, 1024) != 0 || !SetNonBlocking(listen_fd_)) {
    if (error != nullptr) *error = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  // Self-pipe: census workers (and RequestStop, possibly from a signal
  // handler) write one byte to wake the event loop. Created here, not in
  // Serve(), so RequestStop() works in the window between Start and Serve.
  if (pipe(wake_fds_) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
  return true;
}

void SocketServer::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
  const int fd = wake_fds_[1];
  if (fd >= 0) {
    const char byte = 0;
    // write(2) is async-signal-safe; the result is irrelevant (a full pipe
    // means the loop is already waking up).
    [[maybe_unused]] const ssize_t n = write(fd, &byte, 1);
  }
}

void SocketServer::Serve() {
  if (listen_fd_ < 0) return;
  draining_ = false;
  poller_ = Poller::Create(config_.force_poll);
  poller_->Add(listen_fd_, kListenKey, /*want_read=*/true,
               /*want_write=*/false);
  poller_->Add(wake_fds_[0], kWakeKey, /*want_read=*/true,
               /*want_write=*/false);
  pool_ = std::make_unique<util::ThreadPool>(
      static_cast<unsigned>(std::max(1, config_.census_workers)));

  util::Stopwatch drain_watch;
  std::vector<Poller::Event> events;
  while (true) {
    if (stop_.load(std::memory_order_relaxed) && !draining_) {
      BeginDrain();
      drain_watch.Restart();
    }
    if (draining_ &&
        (DrainComplete() || drain_watch.ElapsedSeconds() >
                                kDrainDeadlineSeconds)) {
      break;
    }
    const int n = poller_->Wait(&events, draining_ ? 20 : 1000);
    if (n < 0) break;
    for (const Poller::Event& event : events) {
      if (event.key == kListenKey) {
        if (!draining_) AcceptNew();
        continue;
      }
      if (event.key == kWakeKey) {
        char sink[256];
        while (read(wake_fds_[0], sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(event.key);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if (conn.fd < 0) continue;
      if (event.readable || event.error) OnReadable(conn);
      if (conn.fd >= 0 && event.writable) FlushWrites(conn);
      if (conn.fd >= 0) UpdateInterest(conn);
    }
    DrainCompletions();
    ReapDead();
  }

  // Teardown: anything still open missed the drain deadline. Aborting the
  // shutdown source first bounds the pool destructor, which runs every
  // queued census task to completion.
  shutdown_source_.RequestStop();
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) {
      poller_->Remove(conn.fd);
      close(conn.fd);
      conn.fd = -1;
    }
  }
  conns_.clear();
  pool_.reset();
  {
    util::MutexLock lock(completions_mutex_);
    completions_.clear();
  }
  poller_.reset();
}

void SocketServer::AcceptNew() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: burst drained; anything else: try again next wake
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    if (config_.tcp_port >= 0) {
      // Responses are small frames; never trade latency for segment
      // coalescing on the loopback path.
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    const uint64_t id = next_conn_id_++;
    Conn conn;
    conn.fd = fd;
    conn.id = id;
    conns_.emplace(id, std::move(conn));
    if (!poller_->Add(fd, id, /*want_read=*/true, /*want_write=*/false)) {
      close(fd);
      conns_.erase(id);
      continue;
    }
    metrics_.Increment(connections_);
  }
}

void SocketServer::CloseConn(Conn& conn) {
  if (conn.fd < 0) return;
  poller_->Remove(conn.fd);
  close(conn.fd);
  conn.fd = -1;  // reaped after the current event batch
}

void SocketServer::ReapDead() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    // A dead conn with censuses still in flight must keep its map entry so
    // the eventual completion is recognized (and dropped) by id.
    if (it->second.fd < 0 && it->second.inflight == 0) {
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::UpdateInterest(Conn& conn) {
  if (conn.fd < 0) return;
  const size_t write_pending = conn.wbuf.size() - conn.woff;
  const size_t read_backlog = conn.rbuf.size() - conn.roff;
  const bool want_write = write_pending > 0;
  // Backpressure: stop reading once either buffer crosses the cap — a peer
  // that pipelines faster than it drains responses blocks itself, not the
  // loop. Draining stops all reads.
  const bool want_read = !conn.read_closed && !draining_ &&
                         write_pending <= config_.max_write_buffer_bytes &&
                         read_backlog <= config_.max_write_buffer_bytes;
  if (want_read == !conn.paused && want_write == conn.want_write) return;
  poller_->Update(conn.fd, conn.id, want_read, want_write);
  conn.paused = !want_read;
  conn.want_write = want_write;
}

void SocketServer::OnReadable(Conn& conn) {
  if (conn.fd < 0 || conn.read_closed) return;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.rbuf.append(buf, static_cast<size_t>(n));
      if (conn.rbuf.size() - conn.roff > config_.max_write_buffer_bytes) {
        break;  // backpressure; level-triggered poll re-delivers the rest
      }
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    }
    // EOF or a hard error: no more frames will arrive. Finish flushing what
    // is queued (the peer may have half-closed), then close.
    conn.read_closed = true;
    break;
  }
  ProcessBuffered(conn);
}

void SocketServer::ProcessBuffered(Conn& conn) {
  while (conn.fd >= 0 && !conn.v1_waiting) {
    const size_t avail = conn.rbuf.size() - conn.roff;
    if (avail < sizeof(uint32_t)) break;
    uint32_t length = 0;
    std::memcpy(&length, conn.rbuf.data() + conn.roff, sizeof(length));
    if (length > kMaxFrameBytes) {
      // There is no way to resync a framed stream after a garbage length;
      // drop the connection rather than allocate for it.
      CloseConn(conn);
      return;
    }
    if (avail < sizeof(uint32_t) + length) break;  // frame still dribbling in
    const auto* payload = reinterpret_cast<const uint8_t*>(conn.rbuf.data()) +
                          conn.roff + sizeof(uint32_t);
    conn.roff += sizeof(uint32_t) + length;
    ProcessFrame(conn, {payload, length});
  }
  if (conn.fd < 0) return;
  if (conn.roff == conn.rbuf.size()) {
    conn.rbuf.clear();
    conn.roff = 0;
  } else if (conn.roff > (1u << 20)) {
    conn.rbuf.erase(0, conn.roff);
    conn.roff = 0;
  }
  if (conn.read_closed && conn.inflight == 0 &&
      conn.woff == conn.wbuf.size()) {
    CloseConn(conn);
  }
}

void SocketServer::ProcessFrame(Conn& conn,
                                std::span<const uint8_t> payload) {
  util::Stopwatch watch;
  const uint32_t version = conn.version;
  Request request;
  if (!DecodeRequest(payload, &request, version)) {
    metrics_.Increment(bad_requests_);
    Response bad;
    bad.status = StatusCode::kBadRequest;
    bad.text = "undecodable request";
    bad.request_id = request.request_id;  // echo the id when it was readable
    EnqueueResponse(conn, EncodeResponse(request.type, bad, version));
    metrics_.Observe(request_micros_, watch.ElapsedMicros());
    return;
  }

  switch (request.type) {
    case MessageType::kGetFeatures: {
      FeatureService::FeatureReply reply;
      if (!service_.TryGetFeaturesFast(request.node, &reply)) {
        DispatchCold(conn, std::move(request));
        return;
      }
      Response response;
      response.request_id = request.request_id;
      FillFeatureResponse(reply, request.node, &response);
      EnqueueResponse(conn,
                      EncodeResponse(request.type, response, version));
      break;
    }
    case MessageType::kGetFeaturesBatch: {
      // Serve the batch inline only when every root resolves from the fast
      // tiers; one cold root sends the whole batch to a worker (which
      // re-probes the fast tiers — they are cheap — so the reply is built
      // in one place).
      Response response;
      response.request_id = request.request_id;
      response.batch.reserve(request.batch_nodes.size());
      bool all_fast = true;
      for (const int32_t node : request.batch_nodes) {
        FeatureService::FeatureReply reply;
        if (!service_.TryGetFeaturesFast(node, &reply)) {
          all_fast = false;
          break;
        }
        Response entry;
        FillFeatureResponse(reply, node, &entry);
        response.batch.push_back({entry.status, entry.source, entry.epoch,
                                  std::move(entry.values),
                                  std::move(entry.text)});
      }
      if (!all_fast) {
        DispatchCold(conn, std::move(request));
        return;
      }
      EnqueueResponse(conn,
                      EncodeResponse(request.type, response, version));
      break;
    }
    default: {
      bool shutdown_requested = false;
      uint32_t agreed_version = 0;
      Response response =
          HandleInline(request, &agreed_version, &shutdown_requested);
      response.request_id = request.request_id;
      EnqueueResponse(conn,
                      EncodeResponse(request.type, response, version));
      // The kHello reply itself goes out in the old framing; everything
      // after it speaks the agreed version. Never downgrade — a v2
      // connection re-negotiating to v1 would desync pipelined peers.
      if (agreed_version > conn.version && conn.fd >= 0) {
        conn.version = agreed_version;
      }
      if (shutdown_requested) stop_.store(true, std::memory_order_relaxed);
      break;
    }
  }
  const int64_t micros = watch.ElapsedMicros();
  metrics_.Observe(request_micros_, micros);
  const int type_index = TypeIndex(request.type);
  if (type_index >= 0) {
    metrics_.Observe(request_micros_by_type_[type_index], micros);
  }
}

void SocketServer::EnqueueResponse(Conn& conn, std::string encoded) {
  if (conn.fd < 0) return;
  uint32_t length = static_cast<uint32_t>(encoded.size());
  char header[sizeof(length)];
  std::memcpy(header, &length, sizeof(length));
  conn.wbuf.append(header, sizeof(length));
  conn.wbuf.append(encoded);
  metrics_.Increment(requests_total_);
  const int64_t sent = responses_sent_.fetch_add(1) + 1;
  if (config_.max_requests > 0 && sent >= config_.max_requests) {
    stop_.store(true, std::memory_order_relaxed);
  }
  FlushWrites(conn);  // opportunistic; leftovers wait for POLLOUT
  if (conn.fd >= 0) UpdateInterest(conn);
}

void SocketServer::FlushWrites(Conn& conn) {
  if (conn.fd < 0) return;
  while (conn.woff < conn.wbuf.size()) {
    const ssize_t n = write(conn.fd, conn.wbuf.data() + conn.woff,
                            conn.wbuf.size() - conn.woff);
    if (n > 0) {
      conn.woff += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConn(conn);  // peer is gone; pending bytes are undeliverable
    return;
  }
  conn.wbuf.clear();
  conn.woff = 0;
  if (conn.read_closed && conn.inflight == 0) CloseConn(conn);
}

void SocketServer::DispatchCold(Conn& conn, Request request) {
  // Admission control. The shed path answers immediately — a client under
  // deadline pressure learns "try elsewhere" in microseconds instead of
  // queueing behind censuses it cannot wait for.
  if (cold_pending_.load(std::memory_order_relaxed) >=
      config_.cold_queue_limit) {
    metrics_.Increment(overloaded_);
    Response shed;
    shed.request_id = request.request_id;
    const std::string detail =
        "cold-census queue is full (limit " +
        std::to_string(config_.cold_queue_limit) + "); retry later";
    if (request.type == MessageType::kGetFeaturesBatch) {
      // Partial failure per root: the fast tiers answer on the event thread
      // regardless of cold-queue pressure, so only the roots that actually
      // need a census are shed.
      shed.batch.reserve(request.batch_nodes.size());
      for (const int32_t node : request.batch_nodes) {
        FeatureService::FeatureReply reply;
        if (service_.TryGetFeaturesFast(node, &reply)) {
          Response entry;
          FillFeatureResponse(reply, node, &entry);
          shed.batch.push_back({entry.status, entry.source, entry.epoch,
                                std::move(entry.values),
                                std::move(entry.text)});
        } else {
          shed.batch.push_back(
              {StatusCode::kOverloaded, 0, 0, {}, detail});
        }
      }
    } else {
      shed.status = StatusCode::kOverloaded;
      shed.text = detail;
    }
    EnqueueResponse(conn, EncodeResponse(request.type, shed, conn.version));
    return;
  }
  cold_pending_.fetch_add(1, std::memory_order_relaxed);
  conn.inflight++;
  // v1 has no request ids, so responses must stay in request order: hold
  // frame processing on this connection until the completion lands. v2
  // keeps parsing and may complete out of order.
  if (conn.version == kProtocolV1) conn.v1_waiting = true;

  // One token covers the whole request lifetime: server shutdown (parent)
  // plus the client's deadline, armed now so time spent queued counts
  // against the budget too.
  util::StopSource source(shutdown_source_.Token());
  if (request.deadline_ms > 0) {
    source.SetDeadlineAfter(static_cast<double>(request.deadline_ms) / 1e3);
  }
  util::StopToken token = source.Token();
  const uint64_t conn_id = conn.id;
  const uint32_t version = conn.version;

  pool_->Submit([this, conn_id, version, token,
                 request = std::move(request)]() mutable {
    util::Stopwatch watch;
    Response response;
    response.request_id = request.request_id;
    if (token.StopRequested()) {
      // Expired while queued (or the server is stopping): the work was
      // never started, so shed rather than report a census failure.
      metrics_.Increment(overloaded_);
      response.status = StatusCode::kOverloaded;
      response.text = request.deadline_ms > 0
                          ? "deadline expired before a census worker was free"
                          : "server is shutting down";
    } else if (request.type == MessageType::kGetFeatures) {
      FillFeatureResponse(service_.GetFeatures(request.node, token),
                          request.node, &response);
    } else {
      response.batch.reserve(request.batch_nodes.size());
      for (const int32_t node : request.batch_nodes) {
        Response entry;
        FillFeatureResponse(service_.GetFeatures(node, token), node, &entry);
        response.batch.push_back({entry.status, entry.source, entry.epoch,
                                  std::move(entry.values),
                                  std::move(entry.text)});
      }
    }
    std::string encoded = EncodeResponse(request.type, response, version);
    const int64_t micros = watch.ElapsedMicros();
    metrics_.Observe(request_micros_, micros);
    const int type_index = TypeIndex(request.type);
    if (type_index >= 0) {
      metrics_.Observe(request_micros_by_type_[type_index], micros);
    }
    cold_pending_.fetch_sub(1, std::memory_order_relaxed);
    {
      util::MutexLock lock(completions_mutex_);
      completions_.push_back({conn_id, std::move(encoded)});
    }
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = write(wake_fds_[1], &byte, 1);
  });
}

void SocketServer::DrainCompletions() {
  std::deque<Completion> batch;
  {
    util::MutexLock lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    conn.inflight--;
    conn.v1_waiting = false;
    if (conn.fd < 0) continue;  // peer left while the census ran
    EnqueueResponse(conn, std::move(completion.encoded));
    if (conn.fd >= 0) {
      ProcessBuffered(conn);  // v1: resume frames held for ordering
    }
    if (conn.fd >= 0) UpdateInterest(conn);
  }
  if (!batch.empty()) ReapDead();
}

void SocketServer::BeginDrain() {
  draining_ = true;
  // Cancel queued and running censuses: workers answer them kOverloaded /
  // kError in microseconds, so the drain converges fast.
  shutdown_source_.RequestStop();
  if (listen_fd_ >= 0) poller_->Remove(listen_fd_);
  for (auto& [id, conn] : conns_) {
    UpdateInterest(conn);  // draining_ drops read interest everywhere
  }
}

bool SocketServer::DrainComplete() {
  if (cold_pending_.load(std::memory_order_relaxed) != 0) return false;
  {
    util::MutexLock lock(completions_mutex_);
    if (!completions_.empty()) return false;
  }
  for (const auto& [id, conn] : conns_) {
    if (conn.fd >= 0 &&
        (conn.inflight > 0 || conn.woff < conn.wbuf.size())) {
      return false;
    }
  }
  return true;
}

void SocketServer::FillFeatureResponse(
    const FeatureService::FeatureReply& reply, int32_t node,
    Response* response) {
  response->epoch = reply.epoch;
  switch (reply.outcome) {
    case FeatureService::Outcome::kOk:
      response->source = static_cast<uint8_t>(reply.source);
      response->values = reply.values;
      break;
    case FeatureService::Outcome::kNotFound:
      response->status = StatusCode::kNotFound;
      response->text = "node " + std::to_string(node) +
                       " is in neither the snapshot nor the graph";
      break;
    case FeatureService::Outcome::kDeadline:
      response->status = StatusCode::kError;
      response->text =
          "cold census deadline exceeded for node " + std::to_string(node);
      break;
  }
}

Response SocketServer::HandleInline(const Request& request,
                                    uint32_t* agreed_version,
                                    bool* shutdown) {
  Response response;
  switch (request.type) {
    case MessageType::kHello: {
      if (request.max_version == 0) {
        response.status = StatusCode::kBadRequest;
        response.text = "kHello max_version must be >= 1";
        break;
      }
      const uint32_t agreed =
          std::min(request.max_version, kMaxSupportedProtocol);
      response.agreed_version = agreed;
      *agreed_version = agreed;
      break;
    }
    case MessageType::kGetVocabulary:
      response.hashes = service_.Vocabulary();
      break;
    case MessageType::kTopKEncodings: {
      for (FeatureService::VocabularyEntry& entry :
           service_.TopKEncodings(request.k)) {
        response.entries.push_back(
            {entry.hash, entry.total, std::move(entry.encoding)});
      }
      break;
    }
    case MessageType::kStats:
      response.text = StatsJson();
      break;
    case MessageType::kShutdown:
      *shutdown = true;
      break;
    case MessageType::kApplyUpdate: {
      if (!service_.has_stream()) {
        response.status = StatusCode::kError;
        response.text =
            "updates are disabled (daemon started without --delta-log / "
            "stream support)";
        break;
      }
      // Write-ahead: the batch must be durable before it mutates anything,
      // or a crash between apply and append would lose it on replay.
      if (config_.delta_log != nullptr) {
        std::string log_error;
        if (!config_.delta_log->Append(request.ops, &log_error)) {
          response.status = StatusCode::kError;
          response.text = "delta log append failed: " + log_error;
          break;
        }
      }
      FeatureService::UpdateReply reply = service_.ApplyUpdate(request.ops);
      response.epoch = reply.epoch;
      response.applied = static_cast<uint32_t>(reply.applied);
      response.rejected = static_cast<uint32_t>(reply.rejected);
      response.dirty_roots = static_cast<uint32_t>(reply.dirty_roots);
      response.new_columns = static_cast<uint32_t>(reply.new_columns);
      break;
    }
    case MessageType::kGetEpoch: {
      const FeatureService::EpochInfo info = service_.GetEpoch();
      response.stream_attached = info.stream_attached ? 1 : 0;
      response.epoch = info.epoch;
      response.num_columns = static_cast<uint32_t>(info.num_columns);
      response.overlay_rows = info.overlay_rows;
      break;
    }
    case MessageType::kGetShardMap:
      if (config_.shard_map_blob.empty()) {
        response.status = StatusCode::kError;
        response.text = "no shard map configured (start with --shard-map)";
        break;
      }
      response.shard_map_blob = config_.shard_map_blob;
      break;
    case MessageType::kGetFeatures:
    case MessageType::kGetFeaturesBatch:
      // Handled by ProcessFrame / DispatchCold, never routed here.
      response.status = StatusCode::kError;
      response.text = "internal: feature request routed to HandleInline";
      break;
  }
  return response;
}

std::string SocketServer::StatsJson() const {
  const FeatureService::Stats stats = service_.GetStats();
  std::ostringstream out;
  out << "{\"snapshot\":{\"rows\":" << stats.num_rows
      << ",\"cols\":" << stats.num_cols << ",\"labels\":" << stats.num_labels
      << ",\"emax\":" << stats.max_edges
      << ",\"dmax\":" << stats.effective_dmax << "}"
      << ",\"graph_attached\":" << (stats.graph_attached ? "true" : "false")
      << ",\"stream\":{\"attached\":"
      << (stats.stream_attached ? "true" : "false")
      << ",\"epoch\":" << stats.epoch
      << ",\"columns\":" << stats.stream_columns
      << ",\"rows\":" << stats.stream_rows << "}"
      << ",\"loop\":{\"backend\":\""
      << (poller_ != nullptr ? poller_->name() : "none")
      << "\",\"open_connections\":" << conns_.size()
      << ",\"cold_pending\":" << cold_pending_.load(std::memory_order_relaxed)
      << ",\"census_workers\":" << std::max(1, config_.census_workers)
      << ",\"cold_queue_limit\":" << config_.cold_queue_limit << "}"
      << ",\"cache\":{\"entries\":" << stats.cache_entries
      << ",\"capacity\":" << stats.cache_capacity
      << ",\"evictions\":" << stats.cache_evictions << "}"
      << ",\"metrics\":" << metrics_.Snapshot().ToJson() << "}";
  return out.str();
}

}  // namespace hsgf::serve
