#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "util/timer.h"

namespace hsgf::serve {

namespace {

// Latency histogram suffix per message type (indexed by type value - 1).
const char* const kTypeNames[] = {"get_features", "get_vocabulary",
                                  "top_k_encodings", "stats", "shutdown",
                                  "apply_update", "get_epoch"};
constexpr int kNumTypes = 7;

int TypeIndex(MessageType type) {
  const int index = static_cast<int>(type) - 1;
  return (index >= 0 && index < kNumTypes) ? index : -1;
}

}  // namespace

SocketServer::SocketServer(FeatureService& service,
                           util::MetricsRegistry& metrics, ServerConfig config)
    : service_(service), metrics_(metrics), config_(std::move(config)) {
  connections_ = metrics_.Counter("serve.connections");
  requests_total_ = metrics_.Counter("serve.requests_total");
  bad_requests_ = metrics_.Counter("serve.bad_requests");
  request_micros_ = metrics_.Histogram("serve.request_micros");
  for (int i = 0; i < kNumTypes; ++i) {
    request_micros_by_type_[i] = metrics_.Histogram(
        std::string("serve.request_micros.") + kTypeNames[i]);
  }
}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    if (!config_.unix_socket_path.empty()) {
      unlink(config_.unix_socket_path.c_str());
    }
  }
}

bool SocketServer::Start(std::string* error) {
  const bool want_unix = !config_.unix_socket_path.empty();
  const bool want_tcp = config_.tcp_port >= 0;
  if (want_unix == want_tcp) {
    if (error != nullptr) {
      *error = "configure exactly one of unix_socket_path / tcp_port";
    }
    return false;
  }

  if (want_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, config_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    unlink(config_.unix_socket_path.c_str());  // clear a stale socket file
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (error != nullptr) {
        *error = "bind " + config_.unix_socket_path + ": " +
                 std::strerror(errno);
      }
      close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.tcp_port));
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (error != nullptr) {
        *error = "bind 127.0.0.1:" + std::to_string(config_.tcp_port) + ": " +
                 std::strerror(errno);
      }
      close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  if (listen(listen_fd_, 64) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

void SocketServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !stop_.load(std::memory_order_relaxed)) continue;
      break;  // listener shut down (RequestStop) or unrecoverable
    }
    metrics_.Increment(connections_);
    HandleConnection(fd);
    close(fd);
  }
}

void SocketServer::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  }
}

void SocketServer::HandleConnection(int fd) {
  std::string payload;
  while (!stop_.load(std::memory_order_relaxed) && ReadFrame(fd, &payload)) {
    util::Stopwatch watch;
    Request request;
    std::string encoded;
    bool shutdown_requested = false;
    if (!DecodeRequest(
            {reinterpret_cast<const uint8_t*>(payload.data()), payload.size()},
            &request)) {
      metrics_.Increment(bad_requests_);
      Response bad;
      bad.status = StatusCode::kBadRequest;
      bad.text = "undecodable request";
      encoded = EncodeResponse(request.type, bad);
    } else {
      encoded = HandleRequest(request, &shutdown_requested);
    }
    const bool written = WriteFrame(fd, encoded);

    metrics_.Increment(requests_total_);
    const int64_t micros = watch.ElapsedMicros();
    metrics_.Observe(request_micros_, micros);
    const int type_index = TypeIndex(request.type);
    if (type_index >= 0) {
      metrics_.Observe(request_micros_by_type_[type_index], micros);
    }

    const int64_t served = requests_served_.fetch_add(1) + 1;
    if (shutdown_requested ||
        (config_.max_requests > 0 && served >= config_.max_requests)) {
      RequestStop();
      break;
    }
    if (!written) break;
  }
}

std::string SocketServer::HandleRequest(const Request& request,
                                        bool* shutdown) {
  Response response;
  switch (request.type) {
    case MessageType::kGetFeatures: {
      FeatureService::FeatureReply reply = service_.GetFeatures(request.node);
      response.epoch = reply.epoch;
      switch (reply.outcome) {
        case FeatureService::Outcome::kOk:
          response.source = static_cast<uint8_t>(reply.source);
          response.values = std::move(reply.values);
          break;
        case FeatureService::Outcome::kNotFound:
          response.status = StatusCode::kNotFound;
          response.text = "node " + std::to_string(request.node) +
                          " is in neither the snapshot nor the graph";
          break;
        case FeatureService::Outcome::kDeadline:
          response.status = StatusCode::kError;
          response.text = "cold census deadline exceeded for node " +
                          std::to_string(request.node);
          break;
      }
      break;
    }
    case MessageType::kGetVocabulary:
      response.hashes = service_.Vocabulary();
      break;
    case MessageType::kTopKEncodings: {
      for (FeatureService::VocabularyEntry& entry :
           service_.TopKEncodings(request.k)) {
        response.entries.push_back(
            {entry.hash, entry.total, std::move(entry.encoding)});
      }
      break;
    }
    case MessageType::kStats:
      response.text = StatsJson();
      break;
    case MessageType::kShutdown:
      *shutdown = true;
      break;
    case MessageType::kApplyUpdate: {
      if (!service_.has_stream()) {
        response.status = StatusCode::kError;
        response.text =
            "updates are disabled (daemon started without --delta-log / "
            "stream support)";
        break;
      }
      // Write-ahead: the batch must be durable before it mutates anything,
      // or a crash between apply and append would lose it on replay.
      if (config_.delta_log != nullptr) {
        std::string log_error;
        if (!config_.delta_log->Append(request.ops, &log_error)) {
          response.status = StatusCode::kError;
          response.text = "delta log append failed: " + log_error;
          break;
        }
      }
      FeatureService::UpdateReply reply = service_.ApplyUpdate(request.ops);
      response.epoch = reply.epoch;
      response.applied = static_cast<uint32_t>(reply.applied);
      response.rejected = static_cast<uint32_t>(reply.rejected);
      response.dirty_roots = static_cast<uint32_t>(reply.dirty_roots);
      response.new_columns = static_cast<uint32_t>(reply.new_columns);
      break;
    }
    case MessageType::kGetEpoch: {
      const FeatureService::EpochInfo info = service_.GetEpoch();
      response.stream_attached = info.stream_attached ? 1 : 0;
      response.epoch = info.epoch;
      response.num_columns = static_cast<uint32_t>(info.num_columns);
      response.overlay_rows = info.overlay_rows;
      break;
    }
  }
  return EncodeResponse(request.type, response);
}

std::string SocketServer::StatsJson() const {
  const FeatureService::Stats stats = service_.GetStats();
  std::ostringstream out;
  out << "{\"snapshot\":{\"rows\":" << stats.num_rows
      << ",\"cols\":" << stats.num_cols << ",\"labels\":" << stats.num_labels
      << ",\"emax\":" << stats.max_edges
      << ",\"dmax\":" << stats.effective_dmax << "}"
      << ",\"graph_attached\":" << (stats.graph_attached ? "true" : "false")
      << ",\"stream\":{\"attached\":"
      << (stats.stream_attached ? "true" : "false")
      << ",\"epoch\":" << stats.epoch
      << ",\"columns\":" << stats.stream_columns
      << ",\"rows\":" << stats.stream_rows << "}"
      << ",\"cache\":{\"entries\":" << stats.cache_entries
      << ",\"capacity\":" << stats.cache_capacity
      << ",\"evictions\":" << stats.cache_evictions << "}"
      << ",\"metrics\":" << metrics_.Snapshot().ToJson() << "}";
  return out.str();
}

}  // namespace hsgf::serve
