#ifndef HSGF_SERVE_SERVER_H_
#define HSGF_SERVE_SERVER_H_

#include <atomic>
#include <string>

#include "serve/feature_service.h"
#include "serve/protocol.h"
#include "stream/delta_log.h"
#include "util/metrics.h"

namespace hsgf::serve {

struct ServerConfig {
  // Exactly one endpoint: a Unix domain socket path, or a loopback TCP port
  // (0 picks an ephemeral port — read it back with tcp_port()).
  std::string unix_socket_path;
  int tcp_port = -1;

  // Stop serving after this many requests (0 = until a kShutdown request).
  // Lets smoke tests bound the daemon's lifetime without signals.
  int64_t max_requests = 0;

  // Write-ahead log for kApplyUpdate batches. When set, each batch is
  // appended (and flushed) *before* it is applied; a batch whose append
  // fails is rejected wholesale, so the log never lags the in-memory state.
  // The writer must be open and outlive the server. Null disables logging.
  stream::DeltaLogWriter* delta_log = nullptr;
};

// Accept loop speaking the length-prefixed protocol (protocol.h) over a
// Unix or TCP socket. Connections are handled sequentially — one request is
// a hash probe or an mmap read in the common case, so the accept loop is not
// the bottleneck until cold misses dominate; FeatureService is fully
// thread-safe, so the loop can fan out to a worker pool without changes to
// the service layer when that day comes.
class SocketServer {
 public:
  SocketServer(FeatureService& service, util::MetricsRegistry& metrics,
               ServerConfig config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds and listens. False (with *error set) on bad config or bind/listen
  // failure.
  bool Start(std::string* error);

  // The bound TCP port (after Start); -1 for Unix endpoints.
  int tcp_port() const { return bound_tcp_port_; }

  // Serves until a kShutdown request arrives, max_requests is exhausted, or
  // RequestStop() is called. Blocking; run it on a dedicated thread if the
  // caller needs to keep working.
  void Serve();

  // Makes Serve() return promptly; callable from any thread and from signal
  // handlers (only async-signal-safe calls).
  void RequestStop();

 private:
  void HandleConnection(int fd);
  // Returns the encoded response; sets *shutdown for kShutdown requests.
  std::string HandleRequest(const Request& request, bool* shutdown);
  std::string StatsJson() const;

  FeatureService& service_;
  util::MetricsRegistry& metrics_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int bound_tcp_port_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> requests_served_{0};

  util::MetricId connections_ = util::kInvalidMetric;
  util::MetricId requests_total_ = util::kInvalidMetric;
  util::MetricId bad_requests_ = util::kInvalidMetric;
  util::MetricId request_micros_ = util::kInvalidMetric;
  util::MetricId request_micros_by_type_[8] = {
      util::kInvalidMetric, util::kInvalidMetric, util::kInvalidMetric,
      util::kInvalidMetric, util::kInvalidMetric, util::kInvalidMetric,
      util::kInvalidMetric, util::kInvalidMetric};
};

}  // namespace hsgf::serve

#endif  // HSGF_SERVE_SERVER_H_
