#ifndef HSGF_SERVE_SERVER_H_
#define HSGF_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/feature_service.h"
#include "serve/poller.h"
#include "serve/protocol.h"
#include "stream/delta_log.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/stop_token.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace hsgf::serve {

struct ServerConfig {
  // Exactly one endpoint: a Unix domain socket path, or a loopback TCP port
  // (0 picks an ephemeral port — read it back with tcp_port()).
  std::string unix_socket_path;
  int tcp_port = -1;

  // Stop serving after this many responses (0 = until a kShutdown request).
  // Lets smoke tests bound the daemon's lifetime without signals.
  int64_t max_requests = 0;

  // Write-ahead log for kApplyUpdate batches. When set, each batch is
  // appended (and flushed) *before* it is applied; a batch whose append
  // fails is rejected wholesale, so the log never lags the in-memory state.
  // The writer must be open and outlive the server. Null disables logging.
  stream::DeltaLogWriter* delta_log = nullptr;

  // Worker threads executing cold-miss censuses off the event thread (>= 1).
  // Hot reads (stream/snapshot/cache rows) never touch the pool.
  int census_workers = 2;

  // Admission control: maximum cold requests queued or running at once. A
  // cold miss arriving beyond this is answered kOverloaded instead of
  // queueing (0 sheds every cold miss — useful in tests and for serving
  // snapshot-only replicas that should never census).
  size_t cold_queue_limit = 64;

  // Backpressure: once a connection's unflushed response bytes exceed this,
  // the server stops reading new frames from it until the peer drains.
  size_t max_write_buffer_bytes = 8u << 20;

  // Use the portable poll(2) backend even where epoll is available (covers
  // the fallback path in tests).
  bool force_poll = false;

  // Serialized ShardMap blob answered to kGetShardMap, so a backend in a
  // sharded deployment can tell smart clients where every shard lives.
  // Empty (the default) answers kGetShardMap with kError.
  std::string shard_map_blob;
};

// Event-loop server speaking the length-prefixed protocol (protocol.h) over
// a Unix or TCP socket. One thread runs a non-blocking epoll/poll loop over
// every connection: frames are parsed incrementally as bytes arrive, hot
// requests (snapshot/stream/cache rows and metadata ops) are answered
// inline, and cold-miss censuses run on a small worker pool so a slow
// census never stalls I/O for other connections. Responses queue in
// per-connection write buffers flushed as sockets accept bytes.
//
// Protocol-v2 connections (after kHello) may pipeline requests; the server
// completes them out of order and matches responses by request id. On v1
// connections the server preserves strict request/response ordering by
// holding frame processing while a cold request is in flight.
//
// Admission control: cold work beyond cold_queue_limit — or whose
// per-request deadline has already expired by the time a worker picks it up
// — is answered kOverloaded. Deadlines and server shutdown share one linked
// StopToken chain, so an abandoned request stops burning a census worker.
class SocketServer {
 public:
  SocketServer(FeatureService& service, util::MetricsRegistry& metrics,
               ServerConfig config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds and listens. False (with *error set) on bad config or bind/listen
  // failure.
  bool Start(std::string* error);

  // The bound TCP port (after Start); -1 for Unix endpoints.
  int tcp_port() const { return bound_tcp_port_; }

  // Runs the event loop until a kShutdown request arrives, max_requests is
  // exhausted, or RequestStop() is called; pending responses are flushed
  // (bounded) before it returns. Blocking; run it on a dedicated thread if
  // the caller needs to keep working.
  void Serve();

  // Makes Serve() return promptly; callable from any thread and from signal
  // handlers (only async-signal-safe calls).
  void RequestStop();

 private:
  // One connection's edge-level state machine.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    uint32_t version = kProtocolV1;
    std::string rbuf;     // unparsed inbound bytes
    size_t roff = 0;      // parse cursor into rbuf
    std::string wbuf;     // unflushed outbound bytes
    size_t woff = 0;      // flush cursor into wbuf
    int inflight = 0;     // cold requests dispatched, completion pending
    bool v1_waiting = false;   // v1 ordering: hold parsing until completion
    bool read_closed = false;  // peer EOF seen; flush then close
    bool want_write = false;   // registered for POLLOUT
    bool paused = false;       // reading paused (backpressure or drain)
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string encoded;  // response frame payload, ready to enqueue
  };

  // Connection helpers all run on the event thread. CloseConn marks the
  // Conn dead (fd = -1); the loop reaps dead entries after each event batch,
  // so references stay valid for the rest of the current dispatch.
  void AcceptNew();
  void CloseConn(Conn& conn);
  void UpdateInterest(Conn& conn);
  void OnReadable(Conn& conn);
  void ProcessBuffered(Conn& conn);
  void ProcessFrame(Conn& conn, std::span<const uint8_t> payload);
  void EnqueueResponse(Conn& conn, std::string encoded);
  void FlushWrites(Conn& conn);
  void DispatchCold(Conn& conn, Request request);
  void DrainCompletions() HSGF_EXCLUDES(completions_mutex_);
  void BeginDrain();
  bool DrainComplete() HSGF_EXCLUDES(completions_mutex_);
  void ReapDead();

  // Builds the response for request types answered inline on the event
  // thread; sets *shutdown for kShutdown. (Cold feature requests go through
  // DispatchCold instead.)
  Response HandleInline(const Request& request, uint32_t* agreed_version,
                        bool* shutdown);
  // Full feature lookup used by cold worker tasks (and for batch entries).
  static void FillFeatureResponse(const FeatureService::FeatureReply& reply,
                                  int32_t node, Response* response);
  std::string StatsJson() const;

  FeatureService& service_;
  util::MetricsRegistry& metrics_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: workers/RequestStop -> loop
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> responses_sent_{0};
  bool draining_ = false;

  std::unique_ptr<Poller> poller_;
  std::unordered_map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener key, 1 = wake pipe key

  // Cold-census execution: bounded by cold_queue_limit via cold_pending_;
  // workers push encoded responses and poke the wake pipe.
  std::unique_ptr<util::ThreadPool> pool_;
  std::atomic<size_t> cold_pending_{0};
  util::Mutex completions_mutex_;
  std::deque<Completion> completions_ HSGF_GUARDED_BY(completions_mutex_);
  // Parent of every per-request token: RequestStop/shutdown cancels all
  // queued and running censuses at once.
  util::StopSource shutdown_source_;

  util::MetricId connections_ = util::kInvalidMetric;
  util::MetricId requests_total_ = util::kInvalidMetric;
  util::MetricId bad_requests_ = util::kInvalidMetric;
  util::MetricId overloaded_ = util::kInvalidMetric;
  util::MetricId request_micros_ = util::kInvalidMetric;
  // Sized from the protocol's own opcode count: adding a MessageType without
  // growing this table is a compile error, not a silently dropped metric.
  // (The constructor registers a histogram into every slot.)
  util::MetricId request_micros_by_type_[kNumMessageTypes];
};

}  // namespace hsgf::serve

#endif  // HSGF_SERVE_SERVER_H_
