#ifndef HSGF_SERVE_CLIENT_H_
#define HSGF_SERVE_CLIENT_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <unordered_map>

#include "serve/protocol.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "stream/delta_log.h"

namespace hsgf::serve {

// Outcome of one client call, separating *where* it failed from the
// server's verdict: transport and protocol failures mean the connection is
// unusable, while kServerStatus means the exchange worked and the server
// said no (response.status / message carry the details).
struct ClientResult {
  enum class Error : uint8_t {
    kNone = 0,          // success; status == kOk
    kNotConnected = 1,  // no socket (Connect failed or never called)
    kConnect = 2,       // socket()/connect() failed
    kTransport = 3,     // send failed or the peer closed mid-reply
    kProtocol = 4,      // undecodable response or request-id mismatch
    kServerStatus = 5,  // well-formed response with status != kOk
    kTimeout = 6,       // io deadline expired mid-send or mid-receive; the
                        // stream position is unknown, so the connection is
                        // unusable afterwards (reconnect to recover)
  };

  Error error = Error::kNone;
  StatusCode status = StatusCode::kOk;  // server status (kServerStatus/kNone)
  std::string message;                  // error detail, empty on success

  bool ok() const { return error == Error::kNone; }
  explicit operator bool() const { return ok(); }
};

// Blocking client for the hsgf_serve daemon — the one implementation of the
// connect/encode/send/decode dance the CLI tools, tests, and benchmarks all
// share. A fresh connection speaks protocol v1 (compatible with any
// server); Hello() upgrades it to the newest version both sides support,
// unlocking per-request deadlines and pipelining.
//
// Two calling styles, not to be interleaved while requests are in flight:
//  - Typed calls (GetFeatures, ApplyUpdate, ...): one request, waits for
//    its response.
//  - Pipelined: Send() enqueues any number of requests, Receive() blocks
//    for the next response. Under v2 responses may arrive out of order and
//    are matched to their request by id; under v1 they arrive in order.
//
// Thread-safety: typed calls require external synchronization, but in
// pipelined mode one sender thread (Send) and one receiver thread (Receive)
// may operate concurrently — the router's north-side channels depend on
// exactly that split. Connect/Close/Hello still require exclusive access.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  ClientResult ConnectUnix(const std::string& path);
  ClientResult ConnectTcp(int port);  // loopback
  bool connected() const { return fd_ >= 0; }
  void Close();

  // Negotiates the protocol version (min of `max_version` and the server's
  // maximum); subsequent traffic uses the agreed framing. Servers predating
  // kHello close the connection instead of answering — that surfaces as
  // kTransport, and the caller can reconnect and stay on v1.
  ClientResult Hello(uint32_t max_version = kMaxSupportedProtocol);
  uint32_t version() const { return version_; }

  // Latency budget stamped on every subsequent request (0 = none). Only the
  // v2 framing carries it; under v1 it is ignored.
  void set_deadline_ms(uint32_t deadline_ms) { deadline_ms_ = deadline_ms; }

  // Socket-level send/receive deadline (0 = block forever, the default).
  // When set, a Send or Receive stalled longer than this on the socket
  // returns Error::kTimeout instead of blocking indefinitely on a wedged
  // server. Applies to the current connection and any later Connect*.
  void set_io_timeout_ms(uint32_t timeout_ms);
  uint32_t io_timeout_ms() const { return io_timeout_ms_; }

  // Typed round-trips. `response` is always filled on kNone/kServerStatus.
  ClientResult GetFeatures(int32_t node, Response* response);
  ClientResult GetFeaturesBatch(std::span<const int32_t> nodes,
                                Response* response);
  ClientResult GetVocabulary(Response* response);
  ClientResult TopKEncodings(uint32_t k, Response* response);
  ClientResult Stats(Response* response);
  ClientResult GetEpoch(Response* response);
  ClientResult ApplyUpdate(std::span<const stream::DeltaOp> ops,
                           Response* response);
  ClientResult Shutdown(Response* response = nullptr);
  // v3 servers and the router answer with the deployment's serialized
  // ShardMap (response->shard_map_blob); older servers report kBadRequest.
  ClientResult GetShardMap(Response* response);

  // Pipelined mode. Send stamps the request with a fresh id (echoed in
  // *request_id when non-null) and the configured deadline, and returns
  // once the frame is written. Receive blocks for the next response frame,
  // fills *response, and reports which request it answers via *type /
  // response->request_id. A response whose id matches nothing outstanding
  // is a protocol error.
  ClientResult Send(Request request, uint32_t* request_id = nullptr)
      HSGF_EXCLUDES(mutex_);
  ClientResult Receive(Response* response, MessageType* type = nullptr)
      HSGF_EXCLUDES(mutex_);
  size_t outstanding() const HSGF_EXCLUDES(mutex_);

 private:
  ClientResult Call(Request request, Response* response)
      HSGF_EXCLUDES(mutex_);
  ClientResult CheckStatus(const Response& response) const;
  void ApplyIoTimeout();

  int fd_ = -1;
  uint32_t version_ = kProtocolV1;
  uint32_t deadline_ms_ = 0;
  uint32_t io_timeout_ms_ = 0;
  // Guards the pipelining bookkeeping below (and serializes frame writes)
  // so a sender and a receiver thread can share the connection. ReadFrame
  // itself runs unlocked — it only touches fd_.
  mutable util::Mutex mutex_;
  uint32_t next_request_id_ HSGF_GUARDED_BY(mutex_) = 1;
  // In-flight pipelined requests: id -> type (the body layout needed to
  // decode the response). send_order_ resolves v1 responses, which carry no
  // id and arrive strictly in request order.
  std::unordered_map<uint32_t, MessageType> pending_ HSGF_GUARDED_BY(mutex_);
  std::deque<uint32_t> send_order_ HSGF_GUARDED_BY(mutex_);
};

}  // namespace hsgf::serve

#endif  // HSGF_SERVE_CLIENT_H_
