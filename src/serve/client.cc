#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace hsgf::serve {

namespace {

ClientResult Fail(ClientResult::Error error, std::string message) {
  ClientResult result;
  result.error = error;
  result.message = std::move(message);
  return result;
}

}  // namespace

Client::~Client() { Close(); }

// Moves require exclusive access to both sides (like Close), so the mutex
// itself is not transferred — each Client owns a fresh one. The analysis
// cannot see that exclusivity contract, hence the per-function opt-outs.
Client::Client(Client&& other) noexcept HSGF_NO_THREAD_SAFETY_ANALYSIS
    : fd_(std::exchange(other.fd_, -1)),
      version_(std::exchange(other.version_, kProtocolV1)),
      deadline_ms_(other.deadline_ms_),
      io_timeout_ms_(other.io_timeout_ms_),
      next_request_id_(other.next_request_id_),
      pending_(std::move(other.pending_)),
      send_order_(std::move(other.send_order_)) {}

Client& Client::operator=(Client&& other) noexcept
    HSGF_NO_THREAD_SAFETY_ANALYSIS {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    version_ = std::exchange(other.version_, kProtocolV1);
    deadline_ms_ = other.deadline_ms_;
    io_timeout_ms_ = other.io_timeout_ms_;
    next_request_id_ = other.next_request_id_;
    pending_ = std::move(other.pending_);
    send_order_ = std::move(other.send_order_);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  version_ = kProtocolV1;
  util::MutexLock lock(mutex_);
  pending_.clear();
  send_order_.clear();
}

ClientResult Client::ConnectUnix(const std::string& path) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Fail(ClientResult::Error::kConnect, "unix socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    if (fd >= 0) close(fd);
    return Fail(ClientResult::Error::kConnect,
                "connect unix:" + path + ": " + detail);
  }
  fd_ = fd;
  ApplyIoTimeout();
  return {};
}

ClientResult Client::ConnectTcp(int port) {
  Close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    if (fd >= 0) close(fd);
    return Fail(ClientResult::Error::kConnect,
                "connect tcp:127.0.0.1:" + std::to_string(port) + ": " +
                    detail);
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  ApplyIoTimeout();
  return {};
}

void Client::set_io_timeout_ms(uint32_t timeout_ms) {
  io_timeout_ms_ = timeout_ms;
  ApplyIoTimeout();
}

void Client::ApplyIoTimeout() {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = io_timeout_ms_ / 1000;
  tv.tv_usec = static_cast<long>(io_timeout_ms_ % 1000) * 1000;
  // A zero timeval means "block forever", matching io_timeout_ms_ == 0.
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

ClientResult Client::Hello(uint32_t max_version) {
  Request request;
  request.type = MessageType::kHello;
  request.max_version = max_version;
  Response response;
  // The handshake itself always runs in the connection's current framing.
  ClientResult result = Call(std::move(request), &response);
  if (!result.ok()) return result;
  if (response.agreed_version < kProtocolV1 ||
      response.agreed_version > max_version) {
    return Fail(ClientResult::Error::kProtocol,
                "server agreed to unsupported protocol version " +
                    std::to_string(response.agreed_version));
  }
  if (response.agreed_version > version_) version_ = response.agreed_version;
  return result;
}

ClientResult Client::GetFeatures(int32_t node, Response* response) {
  Request request;
  request.type = MessageType::kGetFeatures;
  request.node = node;
  return Call(std::move(request), response);
}

ClientResult Client::GetFeaturesBatch(std::span<const int32_t> nodes,
                                      Response* response) {
  Request request;
  request.type = MessageType::kGetFeaturesBatch;
  request.batch_nodes.assign(nodes.begin(), nodes.end());
  return Call(std::move(request), response);
}

ClientResult Client::GetVocabulary(Response* response) {
  Request request;
  request.type = MessageType::kGetVocabulary;
  return Call(std::move(request), response);
}

ClientResult Client::TopKEncodings(uint32_t k, Response* response) {
  Request request;
  request.type = MessageType::kTopKEncodings;
  request.k = k;
  return Call(std::move(request), response);
}

ClientResult Client::Stats(Response* response) {
  Request request;
  request.type = MessageType::kStats;
  return Call(std::move(request), response);
}

ClientResult Client::GetEpoch(Response* response) {
  Request request;
  request.type = MessageType::kGetEpoch;
  return Call(std::move(request), response);
}

ClientResult Client::ApplyUpdate(std::span<const stream::DeltaOp> ops,
                                 Response* response) {
  Request request;
  request.type = MessageType::kApplyUpdate;
  request.ops.assign(ops.begin(), ops.end());
  return Call(std::move(request), response);
}

ClientResult Client::Shutdown(Response* response) {
  Request request;
  request.type = MessageType::kShutdown;
  Response local;
  return Call(std::move(request), response != nullptr ? response : &local);
}

ClientResult Client::GetShardMap(Response* response) {
  Request request;
  request.type = MessageType::kGetShardMap;
  return Call(std::move(request), response);
}

size_t Client::outstanding() const {
  util::MutexLock lock(mutex_);
  return pending_.size();
}

ClientResult Client::Send(Request request, uint32_t* request_id) {
  if (fd_ < 0) return Fail(ClientResult::Error::kNotConnected, "not connected");
  // Holding the lock across the write serializes concurrent senders and
  // keeps frames whole; a receiver thread blocked in ReadFrame is unaffected.
  util::MutexLock lock(mutex_);
  const uint32_t id = next_request_id_++;
  request.request_id = id;
  if (request.deadline_ms == 0) request.deadline_ms = deadline_ms_;
  if (!WriteFrame(fd_, EncodeRequest(request, version_))) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Fail(ClientResult::Error::kTimeout,
                  "send timed out after " + std::to_string(io_timeout_ms_) +
                      "ms");
    }
    return Fail(ClientResult::Error::kTransport, "send failed");
  }
  pending_.emplace(id, request.type);
  send_order_.push_back(id);
  if (request_id != nullptr) *request_id = id;
  return {};
}

ClientResult Client::Receive(Response* response, MessageType* type) {
  if (fd_ < 0) return Fail(ClientResult::Error::kNotConnected, "not connected");
  {
    util::MutexLock lock(mutex_);
    if (pending_.empty()) {
      return Fail(ClientResult::Error::kProtocol, "no requests outstanding");
    }
  }
  // The blocking read runs unlocked so a sender thread can keep pipelining
  // while this thread waits for the next response frame.
  std::string payload;
  const FrameStatus frame = ReadFrameStatus(fd_, &payload);
  if (frame == FrameStatus::kFrameTimeout) {
    return Fail(ClientResult::Error::kTimeout,
                "receive timed out after " + std::to_string(io_timeout_ms_) +
                    "ms");
  }
  if (frame != FrameStatus::kFrameOk) {
    return Fail(ClientResult::Error::kTransport,
                "connection closed mid-reply");
  }
  util::MutexLock lock(mutex_);
  uint32_t id = 0;
  if (version_ >= kProtocolV2) {
    // The id leads the response frame; it selects the pending request whose
    // type determines the body layout.
    if (payload.size() < sizeof(uint32_t)) {
      return Fail(ClientResult::Error::kProtocol, "short response frame");
    }
    std::memcpy(&id, payload.data(), sizeof(id));
  } else {
    id = send_order_.front();  // v1 answers strictly in request order
  }
  const auto it = pending_.find(id);
  if (it == pending_.end()) {
    return Fail(ClientResult::Error::kProtocol,
                "response for unknown request id " + std::to_string(id));
  }
  const MessageType request_type = it->second;
  if (!DecodeResponse(
          request_type,
          {reinterpret_cast<const uint8_t*>(payload.data()), payload.size()},
          response, version_)) {
    return Fail(ClientResult::Error::kProtocol, "undecodable response");
  }
  if (version_ < kProtocolV2) response->request_id = id;
  pending_.erase(it);
  for (auto order = send_order_.begin(); order != send_order_.end(); ++order) {
    if (*order == id) {
      send_order_.erase(order);
      break;
    }
  }
  if (type != nullptr) *type = request_type;
  return CheckStatus(*response);
}

ClientResult Client::Call(Request request, Response* response) {
  if (fd_ < 0) return Fail(ClientResult::Error::kNotConnected, "not connected");
  {
    // Locked: a typed call may race with pipelined Send/Receive on other
    // threads, and the unlocked pending_.empty() probe this replaced was a
    // data race (caught by the capability annotations).
    util::MutexLock lock(mutex_);
    if (!pending_.empty()) {
      return Fail(ClientResult::Error::kProtocol,
                  "typed call while pipelined requests are outstanding");
    }
  }
  const MessageType request_type = request.type;
  ClientResult sent = Send(std::move(request));
  if (!sent.ok()) return sent;
  MessageType got = request_type;
  ClientResult received = Receive(response, &got);
  if (received.ok() && got != request_type) {
    return Fail(ClientResult::Error::kProtocol, "response type mismatch");
  }
  return received;
}

ClientResult Client::CheckStatus(const Response& response) const {
  if (response.status == StatusCode::kOk) return {};
  ClientResult result;
  result.error = ClientResult::Error::kServerStatus;
  result.status = response.status;
  result.message = response.text;
  return result;
}

}  // namespace hsgf::serve
