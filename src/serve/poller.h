#ifndef HSGF_SERVE_POLLER_H_
#define HSGF_SERVE_POLLER_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace hsgf::serve {

// Readiness-notification backend for the event-loop server (and for bulk
// load-generation clients). Two implementations: an edge-of-the-art epoll
// backend on Linux and a portable poll(2) fallback, selected by Create().
// Both deliver level-triggered readiness, so a handler that drains only
// part of a buffer is re-notified on the next Wait().
//
// Each registered fd carries a caller-chosen u64 key that comes back in
// events — callers map keys to connection state and never hand the poller
// anything but fds. Not thread-safe; owned and driven by one event thread.
class Poller {
 public:
  struct Event {
    uint64_t key = 0;
    bool readable = false;
    bool writable = false;
    // Error/hangup on the fd (EPOLLERR/EPOLLHUP/POLLNVAL). The owner should
    // attempt a final read (which reports the error / EOF) and close.
    bool error = false;
  };

  virtual ~Poller() = default;

  // Registers `fd` with interest in read and/or write readiness. One
  // registration per fd; false if the backend rejects the fd.
  virtual bool Add(int fd, uint64_t key, bool want_read, bool want_write) = 0;

  // Replaces the interest set of a registered fd.
  virtual bool Update(int fd, uint64_t key, bool want_read,
                      bool want_write) = 0;

  // Unregisters the fd (callable right before close()).
  virtual void Remove(int fd) = 0;

  // Blocks up to timeout_ms (-1 = indefinitely) and appends ready events to
  // *events (cleared first). Returns the number of events, 0 on timeout, or
  // -1 on an unrecoverable backend error.
  virtual int Wait(std::vector<Event>* events, int timeout_ms) = 0;

  // Human-readable backend name ("epoll" / "poll") for logs and stats.
  virtual const char* name() const = 0;

  // Builds the best backend for this platform; `force_poll` selects the
  // poll(2) fallback even where epoll is available (used by tests to cover
  // both code paths on Linux).
  static std::unique_ptr<Poller> Create(bool force_poll = false);
};

}  // namespace hsgf::serve

#endif  // HSGF_SERVE_POLLER_H_
