#ifndef HSGF_SERVE_PROTOCOL_H_
#define HSGF_SERVE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "stream/delta_log.h"

namespace hsgf::serve {

// Wire protocol of the hsgf_serve daemon. Everything is little-endian.
//
// Frame:       [u32 length][payload: length bytes]
//
// v1 framing (every connection starts here):
//   Request:   [u8 MessageType][type-specific body]
//   Response:  [u8 StatusCode][body]
//
// v2 framing (after a kHello handshake agrees on version >= 2):
//   Request:   [u32 request_id][u32 deadline_ms][u8 MessageType][body]
//   Response:  [u32 request_id][u8 StatusCode][body]
//
// The v2 prefix enables pipelining: a client may have many requests in
// flight on one connection, the server may complete them out of order, and
// the echoed request id matches each response to its request. `deadline_ms`
// (0 = none) is the client's latency budget for this request; the server
// sheds or abandons work that cannot meet it. The kHello request itself is
// always sent in v1 framing — a v1 client that never sends kHello speaks
// the original protocol bit-for-bit.
//
//   status != kOk  -> body = string (error message)
//   status == kOk  -> body depends on the request type (below)
//
// Strings are [u32 length][bytes]. The frame length covers the payload only
// and is capped at kMaxFrameBytes so a garbage peer cannot trigger an
// unbounded allocation.

inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

// Protocol versions a kHello handshake can agree on. v1 is the original
// sequential request/response protocol; v2 adds the request-id/deadline
// framing above plus the kGetFeaturesBatch opcode semantics. v3 keeps the
// v2 framing byte-for-byte and adds shard awareness: the kGetShardMap
// opcode (so smart clients can fetch the deployment's ShardMap and route
// around the hsgf_router front-end) and the kUnavailable status a router
// uses for roots whose shard is down.
inline constexpr uint32_t kProtocolV1 = 1;
inline constexpr uint32_t kProtocolV2 = 2;
inline constexpr uint32_t kProtocolV3 = 3;
inline constexpr uint32_t kMaxSupportedProtocol = kProtocolV3;

enum class MessageType : uint8_t {
  kGetFeatures = 1,    // body: i32 node        -> u8 source, u64 epoch,
                       //                          u32 n, f64[n]
  kGetVocabulary = 2,  // body: empty           -> u32 n, u64 hash[n]
  kTopKEncodings = 3,  // body: u32 k           -> u32 n, n x (u64 hash,
                       //                          f64 total, string encoding)
  kStats = 4,          // body: empty           -> string (JSON)
  kShutdown = 5,       // body: empty           -> empty; daemon then exits
  kApplyUpdate = 6,    // body: delta batch payload (stream/delta_log.h)
                       //                       -> u64 epoch, u32 applied,
                       //                          u32 rejected,
                       //                          u32 dirty_roots,
                       //                          u32 new_columns
  kGetEpoch = 7,       // body: empty           -> u8 stream_attached,
                       //                          u64 epoch, u32 num_columns,
                       //                          u64 overlay_rows
  kHello = 8,          // body: u32 max_version -> u32 agreed_version;
                       //                          connection switches to the
                       //                          agreed framing afterwards
  kGetFeaturesBatch = 9,  // body: u32 n, i32 node[n]
                          //                    -> u32 n, n x per-root reply:
                          //                       u8 status, then (ok) u8
                          //                       source, u64 epoch, u32 m,
                          //                       f64[m] | (non-ok) string
  kGetShardMap = 10,  // body: empty           -> string (serialized ShardMap
                      //                          blob, router/shard_map.h);
                      //                          kError when no map is
                      //                          configured
};

// Number of wire message types. Sized metric tables and per-type dispatch
// arrays derive from this so a new opcode cannot silently fall off the end;
// the static_assert below fails the build if the enum grows without it.
inline constexpr int kNumMessageTypes = 10;
static_assert(static_cast<int>(MessageType::kGetShardMap) == kNumMessageTypes,
              "kNumMessageTypes must track the last MessageType value");

// Upper bound on roots in one kGetFeaturesBatch request. Keeps a single
// batch's reply comfortably under kMaxFrameBytes and bounds the work one
// frame can demand; the decoder rejects larger batches outright.
inline constexpr uint32_t kMaxBatchRoots = 4096;

enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,    // node is in neither the snapshot nor the graph
  kBadRequest = 2,  // undecodable payload or unknown message type
  kError = 3,       // e.g. cold census deadline exceeded
  kOverloaded = 4,  // admission control shed this request (cold-census queue
                    // full, or the deadline expired before work began)
  kUnavailable = 5,  // the shard owning this root is down/unreachable (set by
                     // the router, never by a single-process server)
};

struct Request {
  MessageType type = MessageType::kGetFeatures;
  int32_t node = 0;  // kGetFeatures
  uint32_t k = 0;    // kTopKEncodings
  std::vector<stream::DeltaOp> ops;  // kApplyUpdate
  std::vector<int32_t> batch_nodes;  // kGetFeaturesBatch
  uint32_t max_version = kProtocolV1;  // kHello

  // v2 framing prefix; both stay 0 under v1 framing.
  uint32_t request_id = 0;
  uint32_t deadline_ms = 0;  // 0 = no per-request deadline
};

// One per-root result inside a kGetFeaturesBatch reply. A batch reply is
// kOk overall whenever the batch itself was well-formed; failures are
// reported per root, so one unknown node never poisons its neighbours.
struct BatchEntry {
  StatusCode status = StatusCode::kOk;
  uint8_t source = 0;          // serve::FeatureSource (status == kOk)
  uint64_t epoch = 0;          // stream epoch (status == kOk)
  std::vector<double> values;  // dense row (status == kOk)
  std::string message;         // error text (status != kOk)

  bool operator==(const BatchEntry&) const = default;
};

struct TopKEntry {
  uint64_t hash = 0;
  double total = 0.0;
  std::string encoding;  // human-readable characteristic sequence
};

struct Response {
  StatusCode status = StatusCode::kOk;
  uint8_t source = 0;             // kGetFeatures (serve::FeatureSource)
  uint64_t epoch = 0;             // kGetFeatures / kApplyUpdate / kGetEpoch
  std::vector<double> values;     // kGetFeatures
  std::vector<uint64_t> hashes;   // kGetVocabulary
  std::vector<TopKEntry> entries; // kTopKEncodings
  std::string text;               // kStats JSON, or the error message
  uint32_t applied = 0;           // kApplyUpdate
  uint32_t rejected = 0;          // kApplyUpdate
  uint32_t dirty_roots = 0;       // kApplyUpdate
  uint32_t new_columns = 0;       // kApplyUpdate
  uint8_t stream_attached = 0;    // kGetEpoch
  uint32_t num_columns = 0;       // kGetEpoch
  uint64_t overlay_rows = 0;      // kGetEpoch
  uint32_t agreed_version = 0;    // kHello
  std::vector<BatchEntry> batch;  // kGetFeaturesBatch
  std::string shard_map_blob;     // kGetShardMap (serialized ShardMap)

  uint32_t request_id = 0;  // v2 framing prefix; 0 under v1 framing
};

// `version` selects the framing (kProtocolV1: no prefix; kProtocolV2:
// request_id/deadline_ms on requests, request_id on responses). Message
// bodies are identical under both framings.
std::string EncodeRequest(const Request& request,
                          uint32_t version = kProtocolV1);
bool DecodeRequest(std::span<const uint8_t> payload, Request* request,
                   uint32_t version = kProtocolV1);

// `type` selects which body layout an ok-status response carries.
std::string EncodeResponse(MessageType type, const Response& response,
                           uint32_t version = kProtocolV1);
bool DecodeResponse(MessageType type, std::span<const uint8_t> payload,
                    Response* response, uint32_t version = kProtocolV1);

// Blocking framed I/O over a connected socket. ReadFrame returns false on
// clean EOF, short reads, or an oversized length prefix; WriteFrame returns
// false on write errors.
bool ReadFrame(int fd, std::string* payload);
bool WriteFrame(int fd, std::string_view payload);

// ReadFrame with a typed failure verdict, for callers that must tell a
// peer's clean close from a stalled socket (SO_RCVTIMEO expiry surfaces as
// kFrameTimeout). kFrameEof means EOF on a frame boundary; EOF mid-frame is
// a kFrameError like any other truncation.
enum class FrameStatus : uint8_t {
  kFrameOk = 0,
  kFrameEof = 1,
  kFrameTimeout = 2,
  kFrameError = 3,
};
FrameStatus ReadFrameStatus(int fd, std::string* payload);

}  // namespace hsgf::serve

#endif  // HSGF_SERVE_PROTOCOL_H_
