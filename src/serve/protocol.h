#ifndef HSGF_SERVE_PROTOCOL_H_
#define HSGF_SERVE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "stream/delta_log.h"

namespace hsgf::serve {

// Wire protocol of the hsgf_serve daemon. Everything is little-endian.
//
// Frame:    [u32 length][payload: length bytes]
// Request:  [u8 MessageType][type-specific body]
// Response: [u8 StatusCode][body]
//           status != kOk  -> body = string (error message)
//           status == kOk  -> body depends on the request type (below)
//
// Strings are [u32 length][bytes]. The frame length covers the payload only
// and is capped at kMaxFrameBytes so a garbage peer cannot trigger an
// unbounded allocation.

inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class MessageType : uint8_t {
  kGetFeatures = 1,    // body: i32 node        -> u8 source, u64 epoch,
                       //                          u32 n, f64[n]
  kGetVocabulary = 2,  // body: empty           -> u32 n, u64 hash[n]
  kTopKEncodings = 3,  // body: u32 k           -> u32 n, n x (u64 hash,
                       //                          f64 total, string encoding)
  kStats = 4,          // body: empty           -> string (JSON)
  kShutdown = 5,       // body: empty           -> empty; daemon then exits
  kApplyUpdate = 6,    // body: delta batch payload (stream/delta_log.h)
                       //                       -> u64 epoch, u32 applied,
                       //                          u32 rejected,
                       //                          u32 dirty_roots,
                       //                          u32 new_columns
  kGetEpoch = 7,       // body: empty           -> u8 stream_attached,
                       //                          u64 epoch, u32 num_columns,
                       //                          u64 overlay_rows
};

enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,    // node is in neither the snapshot nor the graph
  kBadRequest = 2,  // undecodable payload or unknown message type
  kError = 3,       // e.g. cold census deadline exceeded
};

struct Request {
  MessageType type = MessageType::kGetFeatures;
  int32_t node = 0;  // kGetFeatures
  uint32_t k = 0;    // kTopKEncodings
  std::vector<stream::DeltaOp> ops;  // kApplyUpdate
};

struct TopKEntry {
  uint64_t hash = 0;
  double total = 0.0;
  std::string encoding;  // human-readable characteristic sequence
};

struct Response {
  StatusCode status = StatusCode::kOk;
  uint8_t source = 0;             // kGetFeatures (serve::FeatureSource)
  uint64_t epoch = 0;             // kGetFeatures / kApplyUpdate / kGetEpoch
  std::vector<double> values;     // kGetFeatures
  std::vector<uint64_t> hashes;   // kGetVocabulary
  std::vector<TopKEntry> entries; // kTopKEncodings
  std::string text;               // kStats JSON, or the error message
  uint32_t applied = 0;           // kApplyUpdate
  uint32_t rejected = 0;          // kApplyUpdate
  uint32_t dirty_roots = 0;       // kApplyUpdate
  uint32_t new_columns = 0;       // kApplyUpdate
  uint8_t stream_attached = 0;    // kGetEpoch
  uint32_t num_columns = 0;       // kGetEpoch
  uint64_t overlay_rows = 0;      // kGetEpoch
};

std::string EncodeRequest(const Request& request);
bool DecodeRequest(std::span<const uint8_t> payload, Request* request);

// `type` selects which body layout an ok-status response carries.
std::string EncodeResponse(MessageType type, const Response& response);
bool DecodeResponse(MessageType type, std::span<const uint8_t> payload,
                    Response* response);

// Blocking framed I/O over a connected socket. ReadFrame returns false on
// clean EOF, short reads, or an oversized length prefix; WriteFrame returns
// false on write errors.
bool ReadFrame(int fd, std::string* payload);
bool WriteFrame(int fd, std::string_view payload);

}  // namespace hsgf::serve

#endif  // HSGF_SERVE_PROTOCOL_H_
