#ifndef HSGF_SERVE_FEATURE_SERVICE_H_
#define HSGF_SERVE_FEATURE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/extractor.h"
#include "graph/het_graph.h"
#include "io/snapshot.h"
#include "stream/delta_log.h"
#include "stream/stream_engine.h"
#include "util/lru_cache.h"
#include "util/metrics.h"
#include "util/stop_token.h"

namespace hsgf::serve {

// Where a served feature vector came from. Wire-stable (sent as u8 in
// GetFeatures responses).
enum class FeatureSource : uint8_t {
  kSnapshot = 0,  // row was persisted in the snapshot
  kCache = 1,     // previously computed on demand, still in the LRU
  kComputed = 2,  // cold miss: censused on demand against the live graph
  kStream = 3,    // incrementally re-censused after a live graph update
};

struct FeatureServiceConfig {
  // Cold-miss LRU budget (entries) and shard count.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;

  // Wall-clock budget for one on-demand census (<= 0: unlimited). A census
  // that exceeds it is abandoned — partial counts are never served or
  // cached, so everything returned stays bit-identical to a full extraction.
  double cold_census_deadline_s = 10.0;
};

// Type-erased cold-miss census source: the serving tier asks only for a node
// count (range check) and an on-demand census, so any census graph storage —
// in-RAM CSR, out-of-core compressed graph — can back the cold path without
// the serve layer naming its type. Implementations must be safe for
// concurrent RunCensus() calls (the extraction session's contract).
class ColdSource {
 public:
  virtual ~ColdSource() = default;
  virtual graph::NodeId num_nodes() const = 0;
  virtual core::CensusResult RunCensus(graph::NodeId node,
                                       util::StopToken stop) = 0;
};

// Binds a census graph storage to the cold path through its extraction
// session (dmax resolution, metrics, per-call workers all come with it).
template <typename GraphT>
class ExtractorColdSource final : public ColdSource {
 public:
  ExtractorColdSource(const GraphT& graph, const core::ExtractorConfig& config)
      : extractor_(graph, config) {}

  graph::NodeId num_nodes() const override {
    return extractor_.graph().num_nodes();
  }
  core::CensusResult RunCensus(graph::NodeId node,
                               util::StopToken stop) override {
    return extractor_.RunCensus(node, std::move(stop));
  }

 private:
  core::BasicExtractor<GraphT> extractor_;
};

// Answers per-node feature queries from an open snapshot: rows persisted in
// the snapshot are served zero-copy; nodes absent from it are censused on
// demand against an attached graph (same emax/dmax/masking/seed as the
// producing extraction, projected onto the snapshot's vocabulary) behind a
// sharded LRU. All methods are safe to call concurrently: the snapshot is
// immutable, the cache and the metrics registry are internally synchronized,
// and each cold census runs on a private worker.
class FeatureService {
 public:
  // Counters/histograms land in `metrics` under "serve.*" (names in
  // DESIGN.md §"Snapshot format & serving"). The registry must outlive the
  // service.
  FeatureService(io::Snapshot snapshot, util::MetricsRegistry& metrics,
                 FeatureServiceConfig config = {});

  FeatureService(const FeatureService&) = delete;
  FeatureService& operator=(const FeatureService&) = delete;

  // Enables the cold-miss path. The graph must outlive the service and carry
  // the snapshot's label alphabet (the encoding hashes depend on it);
  // returns false with *error set on a mismatch.
  bool AttachGraph(const graph::HetGraph& graph, std::string* error = nullptr);

  // Storage-generic form of AttachGraph: binds any census graph storage
  // modelling num_nodes()/label_names() plus the census graph concept —
  // hsgf_serve uses it to serve cold misses straight from an out-of-core
  // gstore::CompressedGraph without materializing the CSR. Same alphabet
  // validation and census parameterization as AttachGraph.
  template <typename GraphT>
  bool AttachGraphStorage(const GraphT& graph, std::string* error = nullptr) {
    if (graph.label_names() != snapshot_.label_names()) {
      if (error != nullptr) {
        *error = "graph label alphabet does not match the snapshot's";
      }
      return false;
    }
    cold_ = std::make_unique<ExtractorColdSource<GraphT>>(
        graph, ColdExtractorConfig());
    return true;
  }

  // Enables live updates: graph mutations via ApplyUpdate(), per-epoch
  // feature versioning, and incremental rows taking precedence over stale
  // snapshot rows. The engine must outlive the service, carry the snapshot's
  // label alphabet and census parameters, and be pristine (epoch 0, empty
  // vocabulary) — its vocabulary is seeded with the snapshot's columns so
  // streamed features extend, never renumber, the snapshot's coordinate
  // system. The stream path supersedes an attached graph for cold misses.
  bool AttachStream(stream::StreamEngine& engine, std::string* error = nullptr);

  const io::Snapshot& snapshot() const { return snapshot_; }
  bool has_graph() const { return cold_ != nullptr; }
  bool has_stream() const { return stream_ != nullptr; }

  enum class Outcome : uint8_t {
    kOk = 0,
    kNotFound = 1,  // node in neither the snapshot nor the attached graph
    kDeadline = 2,  // cold census exceeded cold_census_deadline_s
  };

  struct FeatureReply {
    Outcome outcome = Outcome::kOk;
    FeatureSource source = FeatureSource::kSnapshot;
    // Dense vector in the current vocabulary's column order (empty unless
    // kOk). Without a stream that is the snapshot's column order; with one,
    // the snapshot's columns followed by any streamed extensions.
    std::vector<double> values;
    // Stream epoch the reply reflects (0 without an attached stream).
    uint64_t epoch = 0;
  };

  FeatureReply GetFeatures(graph::NodeId node);

  // As above, but a cold census additionally observes `stop` (linked with
  // the configured cold_census_deadline_s — whichever fires first wins). The
  // event-loop server passes a token combining its shutdown source with the
  // request's deadline, so an abandoned request stops burning a worker.
  FeatureReply GetFeatures(graph::NodeId node, util::StopToken stop);

  // Non-blocking probe of the fast tiers (stream row > snapshot row > LRU >
  // definite not-found). Fills *reply and returns true when the answer
  // needs no cold census; returns false when only an on-demand census can
  // answer, without touching *reply. Lets the server answer hot reads on
  // the event thread and queue only true cold misses to the worker pool.
  bool TryGetFeaturesFast(graph::NodeId node, FeatureReply* reply);

  struct UpdateReply {
    uint64_t epoch = 0;
    int applied = 0;
    int rejected = 0;
    int dirty_roots = 0;
    int new_columns = 0;
    std::string first_error;
  };

  // Applies a delta batch to the attached stream engine, then invalidates
  // exactly the dirty roots in the LRU (plus the whole cache when the
  // vocabulary grew, since cached vectors would be short). Requires
  // has_stream().
  UpdateReply ApplyUpdate(std::span<const stream::DeltaOp> ops);

  struct EpochInfo {
    bool stream_attached = false;
    uint64_t epoch = 0;
    size_t num_columns = 0;
    size_t overlay_rows = 0;
  };

  EpochInfo GetEpoch() const;

  // The current column hashes, in column order (snapshot's, extended by the
  // stream when one is attached).
  std::vector<uint64_t> Vocabulary() const;

  struct VocabularyEntry {
    uint64_t hash = 0;
    double total = 0.0;     // column total of the stored values
    std::string encoding;   // rendered characteristic sequence, or "h<hash>"
  };

  // The k columns with the largest stored totals (descending, ties by
  // hash), with decoded encodings.
  std::vector<VocabularyEntry> TopKEncodings(size_t k) const;

  struct Stats {
    uint32_t num_rows = 0;
    uint32_t num_cols = 0;
    uint32_t num_labels = 0;
    int max_edges = 0;
    int effective_dmax = 0;
    bool graph_attached = false;
    bool stream_attached = false;
    uint64_t epoch = 0;
    size_t stream_columns = 0;
    size_t stream_rows = 0;
    size_t cache_entries = 0;
    size_t cache_capacity = 0;
    int64_t cache_evictions = 0;
  };

  Stats GetStats() const;

 private:
  FeatureReply ComputeCold(graph::NodeId node, const util::StopToken& stop);
  FeatureReply ComputeColdStream(graph::NodeId node,
                                 const util::StopToken& stop);
  // The snapshot-parameterized extraction config every attached cold source
  // is built with (emax/dmax/masking/seed must match the producing run).
  core::ExtractorConfig ColdExtractorConfig() const;

  io::Snapshot snapshot_;
  util::MetricsRegistry& metrics_;
  FeatureServiceConfig config_;
  std::unique_ptr<ColdSource> cold_;        // null until AttachGraph*
  stream::StreamEngine* stream_ = nullptr;  // null until AttachStream
  std::unordered_map<uint64_t, uint32_t> column_of_;
  util::ShardedLruCache<graph::NodeId, std::vector<double>> cache_;

  util::MetricId snapshot_hits_ = util::kInvalidMetric;
  util::MetricId cache_hits_ = util::kInvalidMetric;
  util::MetricId cache_misses_ = util::kInvalidMetric;
  util::MetricId not_found_ = util::kInvalidMetric;
  util::MetricId deadline_exceeded_ = util::kInvalidMetric;
  util::MetricId cold_census_micros_ = util::kInvalidMetric;
  util::MetricId stream_hits_ = util::kInvalidMetric;
  util::MetricId updates_ = util::kInvalidMetric;
  util::MetricId update_dirty_roots_ = util::kInvalidMetric;
  util::MetricId cache_invalidations_ = util::kInvalidMetric;
};

}  // namespace hsgf::serve

#endif  // HSGF_SERVE_FEATURE_SERVICE_H_
