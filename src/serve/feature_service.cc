#include "serve/feature_service.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "core/encoding.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace hsgf::serve {

FeatureService::FeatureService(io::Snapshot snapshot,
                               util::MetricsRegistry& metrics,
                               FeatureServiceConfig config)
    : snapshot_(std::move(snapshot)),
      metrics_(metrics),
      config_(config),
      cache_(config.cache_capacity, config.cache_shards) {
  snapshot_hits_ = metrics_.Counter("serve.snapshot_hits");
  cache_hits_ = metrics_.Counter("serve.cache_hits");
  cache_misses_ = metrics_.Counter("serve.cache_misses");
  not_found_ = metrics_.Counter("serve.not_found");
  deadline_exceeded_ = metrics_.Counter("serve.deadline_exceeded");
  cold_census_micros_ = metrics_.Histogram("serve.cold_census_micros");

  const auto hashes = snapshot_.feature_hashes();
  column_of_.reserve(hashes.size());
  for (uint32_t c = 0; c < hashes.size(); ++c) column_of_.emplace(hashes[c], c);
}

bool FeatureService::AttachGraph(const graph::HetGraph& graph,
                                 std::string* error) {
  // Encoding hashes are a function of the label alphabet: a graph with a
  // different alphabet would silently produce features in a different
  // coordinate system, so refuse it.
  if (graph.label_names() != snapshot_.label_names()) {
    if (error != nullptr) {
      *error = "graph label alphabet does not match the snapshot's";
    }
    return false;
  }
  core::ExtractorConfig config;
  config.census.max_edges = snapshot_.max_edges();
  config.census.max_degree = snapshot_.effective_dmax();
  config.census.mask_start_label = snapshot_.mask_start_label();
  config.census.hash_seed = snapshot_.hash_seed();
  config.census.keep_encodings = false;  // vocabulary is fixed by the snapshot
  config.num_threads = 1;                // cold misses are single-node
  extractor_ = std::make_unique<core::Extractor>(graph, config);
  return true;
}

FeatureService::FeatureReply FeatureService::GetFeatures(graph::NodeId node) {
  const int64_t row = snapshot_.FindRow(node);
  if (row >= 0) {
    metrics_.Increment(snapshot_hits_);
    return {Outcome::kOk, FeatureSource::kSnapshot,
            snapshot_.DenseRow(static_cast<uint32_t>(row))};
  }
  if (auto cached = cache_.Get(node)) {
    metrics_.Increment(cache_hits_);
    return {Outcome::kOk, FeatureSource::kCache, std::move(*cached)};
  }
  if (extractor_ == nullptr || node < 0 ||
      node >= extractor_->graph().num_nodes()) {
    metrics_.Increment(not_found_);
    return {Outcome::kNotFound, FeatureSource::kComputed, {}};
  }
  metrics_.Increment(cache_misses_);
  return ComputeCold(node);
}

FeatureService::FeatureReply FeatureService::ComputeCold(graph::NodeId node) {
  util::StopSource stop_source;
  util::StopToken stop;
  if (config_.cold_census_deadline_s > 0.0) {
    stop_source.SetDeadlineAfter(config_.cold_census_deadline_s);
    stop = stop_source.Token();
  }
  util::Stopwatch watch;
  core::CensusResult census = extractor_->RunCensus(node, stop);
  metrics_.Observe(cold_census_micros_, watch.ElapsedMicros());
  if (census.stopped) {
    // Partial counts would differ from what a full extraction produces;
    // fail the request rather than serve (or cache) them.
    metrics_.Increment(deadline_exceeded_);
    return {Outcome::kDeadline, FeatureSource::kComputed, {}};
  }

  // Project the sparse census onto the snapshot's vocabulary — the same
  // fill BuildFeatureSet performs, so values are bit-identical to the
  // producing extraction's matrix row.
  std::vector<double> values(snapshot_.num_cols(), 0.0);
  const bool log1p = snapshot_.log1p_transform();
  census.counts.ForEach([&](uint64_t hash, int64_t count) {
    auto it = column_of_.find(hash);
    if (it == column_of_.end()) return;
    values[it->second] = log1p ? std::log1p(static_cast<double>(count))
                               : static_cast<double>(count);
  });
  cache_.Put(node, values);
  return {Outcome::kOk, FeatureSource::kComputed, std::move(values)};
}

std::vector<uint64_t> FeatureService::Vocabulary() const {
  const auto hashes = snapshot_.feature_hashes();
  return {hashes.begin(), hashes.end()};
}

std::vector<FeatureService::VocabularyEntry> FeatureService::TopKEncodings(
    size_t k) const {
  const size_t n = std::min<size_t>(k, snapshot_.num_cols());
  const int effective_labels =
      static_cast<int>(snapshot_.num_labels()) +
      (snapshot_.mask_start_label() ? 1 : 0);
  // Rank by the stored column totals. Columns arrive in BuildFeatureSet's
  // raw-count order, which the log1p transform does not preserve, so a
  // prefix of the column order is not the top-k of the stored values.
  std::vector<uint32_t> order(snapshot_.num_cols());
  std::iota(order.begin(), order.end(), 0u);
  const auto totals = snapshot_.column_totals();
  const auto hashes = snapshot_.feature_hashes();
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(n),
                    order.end(), [&](uint32_t a, uint32_t b) {
                      if (totals[a] != totals[b]) return totals[a] > totals[b];
                      return hashes[a] < hashes[b];  // deterministic ties
                    });
  std::vector<VocabularyEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c = order[i];
    VocabularyEntry entry;
    entry.hash = hashes[c];
    entry.total = totals[c];
    const core::Encoding encoding = snapshot_.EncodingOf(c);
    if (encoding.empty()) {
      // Built via append: `"h" + std::to_string(...)` trips a GCC 12
      // -Wrestrict false positive (PR105329) under -O3.
      std::string name = "h";
      name += std::to_string(entry.hash);
      entry.encoding = std::move(name);
    } else {
      entry.encoding = core::EncodingToString(encoding, effective_labels,
                                              snapshot_.label_names());
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

FeatureService::Stats FeatureService::GetStats() const {
  Stats stats;
  stats.num_rows = snapshot_.num_rows();
  stats.num_cols = snapshot_.num_cols();
  stats.num_labels = snapshot_.num_labels();
  stats.max_edges = snapshot_.max_edges();
  stats.effective_dmax = snapshot_.effective_dmax();
  stats.graph_attached = extractor_ != nullptr;
  stats.cache_entries = cache_.size();
  stats.cache_capacity = cache_.capacity();
  stats.cache_evictions = cache_.evictions();
  return stats;
}

}  // namespace hsgf::serve
