#include "serve/feature_service.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "core/encoding.h"
#include "util/check.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace hsgf::serve {

FeatureService::FeatureService(io::Snapshot snapshot,
                               util::MetricsRegistry& metrics,
                               FeatureServiceConfig config)
    : snapshot_(std::move(snapshot)),
      metrics_(metrics),
      config_(config),
      cache_(config.cache_capacity, config.cache_shards) {
  snapshot_hits_ = metrics_.Counter("serve.snapshot_hits");
  cache_hits_ = metrics_.Counter("serve.cache_hits");
  cache_misses_ = metrics_.Counter("serve.cache_misses");
  not_found_ = metrics_.Counter("serve.not_found");
  deadline_exceeded_ = metrics_.Counter("serve.deadline_exceeded");
  cold_census_micros_ = metrics_.Histogram("serve.cold_census_micros");
  stream_hits_ = metrics_.Counter("serve.stream_hits");
  updates_ = metrics_.Counter("serve.updates");
  update_dirty_roots_ = metrics_.Counter("serve.update_dirty_roots");
  cache_invalidations_ = metrics_.Counter("serve.cache_invalidations");

  const auto hashes = snapshot_.feature_hashes();
  column_of_.reserve(hashes.size());
  for (uint32_t c = 0; c < hashes.size(); ++c) column_of_.emplace(hashes[c], c);
}

bool FeatureService::AttachGraph(const graph::HetGraph& graph,
                                 std::string* error) {
  // Encoding hashes are a function of the label alphabet: a graph with a
  // different alphabet would silently produce features in a different
  // coordinate system — AttachGraphStorage refuses the mismatch.
  return AttachGraphStorage(graph, error);
}

core::ExtractorConfig FeatureService::ColdExtractorConfig() const {
  core::ExtractorConfig config;
  config.census.max_edges = snapshot_.max_edges();
  config.census.max_degree = snapshot_.effective_dmax();
  config.census.mask_start_label = snapshot_.mask_start_label();
  config.census.hash_seed = snapshot_.hash_seed();
  config.census.keep_encodings = false;  // vocabulary is fixed by the snapshot
  config.num_threads = 1;                // cold misses are single-node
  return config;
}

bool FeatureService::AttachStream(stream::StreamEngine& engine,
                                  std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (engine.label_names() != snapshot_.label_names()) {
    return fail("stream engine label alphabet does not match the snapshot's");
  }
  const core::CensusConfig& census = engine.census_config();
  if (census.max_edges != snapshot_.max_edges() ||
      census.max_degree != snapshot_.effective_dmax() ||
      census.mask_start_label != snapshot_.mask_start_label() ||
      census.hash_seed != snapshot_.hash_seed()) {
    return fail(
        "stream engine census parameters (emax/dmax/mask/seed) do not match "
        "the snapshot's");
  }
  if (engine.log1p_transform() != snapshot_.log1p_transform()) {
    return fail("stream engine value transform does not match the snapshot's");
  }
  if (engine.epoch() != 0 || engine.num_columns() != 0) {
    return fail("stream engine already carries state; attach a fresh one");
  }
  const auto hashes = snapshot_.feature_hashes();
  engine.SeedVocabulary({hashes.data(), hashes.size()});
  stream_ = &engine;
  return true;
}

FeatureService::FeatureReply FeatureService::GetFeatures(graph::NodeId node) {
  return GetFeatures(node, util::StopToken());
}

FeatureService::FeatureReply FeatureService::GetFeatures(graph::NodeId node,
                                                         util::StopToken stop) {
  FeatureReply reply;
  if (TryGetFeaturesFast(node, &reply)) return reply;
  metrics_.Increment(cache_misses_);
  return stream_ != nullptr ? ComputeColdStream(node, stop)
                            : ComputeCold(node, stop);
}

bool FeatureService::TryGetFeaturesFast(graph::NodeId node,
                                        FeatureReply* reply) {
  const uint64_t epoch = stream_ != nullptr ? stream_->epoch() : 0;

  // Incrementally maintained rows first: they reflect graph mutations the
  // snapshot predates, so they must shadow the snapshot's stale row.
  if (stream_ != nullptr) {
    if (auto streamed = stream_->DenseRow(node)) {
      metrics_.Increment(stream_hits_);
      *reply = {Outcome::kOk, FeatureSource::kStream, std::move(*streamed),
                epoch};
      return true;
    }
  }
  const int64_t row = snapshot_.FindRow(node);
  if (row >= 0) {
    metrics_.Increment(snapshot_hits_);
    std::vector<double> values = snapshot_.DenseRow(static_cast<uint32_t>(row));
    if (stream_ != nullptr) {
      // The stream vocabulary extends the snapshot's, never reorders it, so
      // a snapshot row is served at the current width by zero-padding.
      values.resize(stream_->num_columns(), 0.0);
    }
    *reply = {Outcome::kOk, FeatureSource::kSnapshot, std::move(values), epoch};
    return true;
  }
  if (auto cached = cache_.Get(node)) {
    metrics_.Increment(cache_hits_);
    *reply = {Outcome::kOk, FeatureSource::kCache, std::move(*cached), epoch};
    return true;
  }
  const bool in_range =
      stream_ != nullptr
          ? (node >= 0 && node < stream_->num_nodes())
          : (cold_ != nullptr && node >= 0 && node < cold_->num_nodes());
  if (!in_range) {
    metrics_.Increment(not_found_);
    *reply = {Outcome::kNotFound, FeatureSource::kComputed, {}, epoch};
    return true;
  }
  return false;  // only a cold census can answer
}

FeatureService::UpdateReply FeatureService::ApplyUpdate(
    std::span<const stream::DeltaOp> ops) {
  HSGF_CHECK(stream_ != nullptr) << "ApplyUpdate without an attached stream";
  stream::StreamEngine::ApplyResult applied = stream_->ApplyBatch(ops);
  metrics_.Increment(updates_);
  metrics_.Increment(update_dirty_roots_,
                     static_cast<int64_t>(applied.dirty_roots.size()));

  if (applied.new_columns > 0) {
    // Every cached vector is now short (and a cached census may even have
    // counted one of the newly interned hashes); drop them all. Vocabulary
    // growth is rare at steady state — a mature base graph has already
    // exposed most encodings — so this stays cheap in the common case.
    const auto dropped = static_cast<int64_t>(cache_.size());
    cache_.Clear();
    metrics_.Increment(cache_invalidations_, dropped);
  } else {
    for (const graph::NodeId root : applied.dirty_roots) {
      if (cache_.Erase(root)) metrics_.Increment(cache_invalidations_);
    }
  }

  UpdateReply reply;
  reply.epoch = applied.epoch;
  reply.applied = applied.applied;
  reply.rejected = applied.rejected;
  reply.dirty_roots = static_cast<int>(applied.dirty_roots.size());
  reply.new_columns = applied.new_columns;
  reply.first_error = std::move(applied.first_error);
  return reply;
}

FeatureService::EpochInfo FeatureService::GetEpoch() const {
  EpochInfo info;
  if (stream_ == nullptr) return info;
  info.stream_attached = true;
  info.epoch = stream_->epoch();
  info.num_columns = stream_->num_columns();
  info.overlay_rows = stream_->overlay_rows();
  return info;
}

FeatureService::FeatureReply FeatureService::ComputeCold(
    graph::NodeId node, const util::StopToken& caller_stop) {
  // Link the service-level census deadline with the caller's token (server
  // shutdown and/or the request deadline); the census polls one token and
  // stops on whichever fires first.
  util::StopSource stop_source(caller_stop);
  util::StopToken stop;
  if (config_.cold_census_deadline_s > 0.0) {
    stop_source.SetDeadlineAfter(config_.cold_census_deadline_s);
  }
  if (config_.cold_census_deadline_s > 0.0 || caller_stop.CanStop()) {
    stop = stop_source.Token();
  }
  util::Stopwatch watch;
  core::CensusResult census = cold_->RunCensus(node, stop);
  metrics_.Observe(cold_census_micros_, watch.ElapsedMicros());
  if (census.stopped) {
    // Partial counts would differ from what a full extraction produces;
    // fail the request rather than serve (or cache) them.
    metrics_.Increment(deadline_exceeded_);
    return {Outcome::kDeadline, FeatureSource::kComputed, {}};
  }

  // Project the sparse census onto the snapshot's vocabulary — the same
  // fill BuildFeatureSet performs, so values are bit-identical to the
  // producing extraction's matrix row.
  std::vector<double> values(snapshot_.num_cols(), 0.0);
  const bool log1p = snapshot_.log1p_transform();
  census.counts.ForEach([&](uint64_t hash, int64_t count) {
    auto it = column_of_.find(hash);
    if (it == column_of_.end()) return;
    values[it->second] = log1p ? std::log1p(static_cast<double>(count))
                               : static_cast<double>(count);
  });
  cache_.Put(node, values);
  return {Outcome::kOk, FeatureSource::kComputed, std::move(values), 0};
}

FeatureService::FeatureReply FeatureService::ComputeColdStream(
    graph::NodeId node, const util::StopToken& caller_stop) {
  util::StopSource stop_source(caller_stop);
  util::StopToken stop;
  if (config_.cold_census_deadline_s > 0.0) {
    stop_source.SetDeadlineAfter(config_.cold_census_deadline_s);
  }
  if (config_.cold_census_deadline_s > 0.0 || caller_stop.CanStop()) {
    stop = stop_source.Token();
  }
  util::Stopwatch watch;
  std::optional<core::CensusResult> census = stream_->CensusNode(node, stop);
  metrics_.Observe(cold_census_micros_, watch.ElapsedMicros());
  const uint64_t epoch = stream_->epoch();
  if (!census.has_value()) {
    metrics_.Increment(not_found_);
    return {Outcome::kNotFound, FeatureSource::kComputed, {}, epoch};
  }
  if (census->stopped) {
    metrics_.Increment(deadline_exceeded_);
    return {Outcome::kDeadline, FeatureSource::kComputed, {}, epoch};
  }
  std::vector<double> values = stream_->ProjectCounts(census->counts);
  cache_.Put(node, values);
  return {Outcome::kOk, FeatureSource::kComputed, std::move(values), epoch};
}

std::vector<uint64_t> FeatureService::Vocabulary() const {
  if (stream_ != nullptr) return stream_->vocabulary();
  const auto hashes = snapshot_.feature_hashes();
  return {hashes.begin(), hashes.end()};
}

std::vector<FeatureService::VocabularyEntry> FeatureService::TopKEncodings(
    size_t k) const {
  const size_t n = std::min<size_t>(k, snapshot_.num_cols());
  const int effective_labels =
      static_cast<int>(snapshot_.num_labels()) +
      (snapshot_.mask_start_label() ? 1 : 0);
  // Rank by the stored column totals. Columns arrive in BuildFeatureSet's
  // raw-count order, which the log1p transform does not preserve, so a
  // prefix of the column order is not the top-k of the stored values.
  std::vector<uint32_t> order(snapshot_.num_cols());
  std::iota(order.begin(), order.end(), 0u);
  const auto totals = snapshot_.column_totals();
  const auto hashes = snapshot_.feature_hashes();
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(n),
                    order.end(), [&](uint32_t a, uint32_t b) {
                      if (totals[a] != totals[b]) return totals[a] > totals[b];
                      return hashes[a] < hashes[b];  // deterministic ties
                    });
  std::vector<VocabularyEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c = order[i];
    VocabularyEntry entry;
    entry.hash = hashes[c];
    entry.total = totals[c];
    const core::Encoding encoding = snapshot_.EncodingOf(c);
    if (encoding.empty()) {
      // Built via append: `"h" + std::to_string(...)` trips a GCC 12
      // -Wrestrict false positive (PR105329) under -O3.
      std::string name = "h";
      name += std::to_string(entry.hash);
      entry.encoding = std::move(name);
    } else {
      entry.encoding = core::EncodingToString(encoding, effective_labels,
                                              snapshot_.label_names());
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

FeatureService::Stats FeatureService::GetStats() const {
  Stats stats;
  stats.num_rows = snapshot_.num_rows();
  stats.num_cols = snapshot_.num_cols();
  stats.num_labels = snapshot_.num_labels();
  stats.max_edges = snapshot_.max_edges();
  stats.effective_dmax = snapshot_.effective_dmax();
  stats.graph_attached = cold_ != nullptr;
  stats.stream_attached = stream_ != nullptr;
  if (stream_ != nullptr) {
    stats.epoch = stream_->epoch();
    stats.stream_columns = stream_->num_columns();
    stats.stream_rows = stream_->overlay_rows();
  }
  stats.cache_entries = cache_.size();
  stats.cache_capacity = cache_.capacity();
  stats.cache_evictions = cache_.evictions();
  return stats;
}

}  // namespace hsgf::serve
