#include "serve/poller.h"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <unordered_map>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace hsgf::serve {
namespace {

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) close(epfd_);
  }

  bool ok() const { return epfd_ >= 0; }

  bool Add(int fd, uint64_t key, bool want_read, bool want_write) override {
    epoll_event ev = MakeEvent(key, want_read, want_write);
    if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
    keys_[fd] = key;
    return true;
  }

  bool Update(int fd, uint64_t key, bool want_read, bool want_write) override {
    epoll_event ev = MakeEvent(key, want_read, want_write);
    if (epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) return false;
    keys_[fd] = key;
    return true;
  }

  void Remove(int fd) override {
    epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    keys_.erase(fd);
  }

  int Wait(std::vector<Event>* events, int timeout_ms) override {
    events->clear();
    raw_.resize(keys_.empty() ? 1 : keys_.size());
    int n;
    do {
      n = epoll_wait(epfd_, raw_.data(), static_cast<int>(raw_.size()),
                     timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return -1;
    events->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const epoll_event& re = raw_[static_cast<size_t>(i)];
      Event out;
      out.key = re.data.u64;
      out.readable = (re.events & EPOLLIN) != 0;
      out.writable = (re.events & EPOLLOUT) != 0;
      out.error = (re.events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(out);
    }
    return n;
  }

  const char* name() const override { return "epoll"; }

 private:
  static epoll_event MakeEvent(uint64_t key, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.events = 0;
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    ev.data.u64 = key;
    return ev;
  }

  int epfd_ = -1;
  // fd -> key, tracked only to size the epoll_wait output buffer.
  std::unordered_map<int, uint64_t> keys_;
  std::vector<epoll_event> raw_;
};
#endif  // __linux__

class PollPoller final : public Poller {
 public:
  bool Add(int fd, uint64_t key, bool want_read, bool want_write) override {
    if (fd < 0 || entries_.count(fd) != 0) return false;
    entries_[fd] = Entry{key, want_read, want_write};
    dirty_ = true;
    return true;
  }

  bool Update(int fd, uint64_t key, bool want_read, bool want_write) override {
    auto it = entries_.find(fd);
    if (it == entries_.end()) return false;
    it->second = Entry{key, want_read, want_write};
    dirty_ = true;
    return true;
  }

  void Remove(int fd) override {
    if (entries_.erase(fd) != 0) dirty_ = true;
  }

  int Wait(std::vector<Event>* events, int timeout_ms) override {
    events->clear();
    if (dirty_) {
      pfds_.clear();
      pfds_.reserve(entries_.size());
      for (const auto& [fd, entry] : entries_) {
        pollfd p{};
        p.fd = fd;
        p.events = 0;
        if (entry.want_read) p.events |= POLLIN;
        if (entry.want_write) p.events |= POLLOUT;
        pfds_.push_back(p);
      }
      dirty_ = false;
    }
    int n;
    do {
      n = poll(pfds_.data(), pfds_.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return -1;
    for (const pollfd& p : pfds_) {
      if (p.revents == 0) continue;
      auto it = entries_.find(p.fd);
      if (it == entries_.end()) continue;
      Event out;
      out.key = it->second.key;
      out.readable = (p.revents & POLLIN) != 0;
      out.writable = (p.revents & POLLOUT) != 0;
      out.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      events->push_back(out);
    }
    return static_cast<int>(events->size());
  }

  const char* name() const override { return "poll"; }

 private:
  struct Entry {
    uint64_t key = 0;
    bool want_read = false;
    bool want_write = false;
  };

  std::unordered_map<int, Entry> entries_;
  std::vector<pollfd> pfds_;  // rebuilt lazily when the interest set changes
  bool dirty_ = false;
};

}  // namespace

std::unique_ptr<Poller> Poller::Create(bool force_poll) {
#ifdef __linux__
  if (!force_poll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->ok()) return epoll;
  }
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace hsgf::serve
