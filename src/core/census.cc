#include "core/census.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"

namespace hsgf::core {

namespace {

// SplitMix64 finalizer; the identity on 0, bijective on 64-bit values.
uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CensusMetrics CensusMetrics::Register(util::MetricsRegistry& registry,
                                      int max_edges) {
  CensusMetrics metrics;
  metrics.registry = &registry;
  metrics.nodes = registry.Counter("census.nodes");
  metrics.subgraphs_total = registry.Counter("census.subgraphs_total");
  metrics.subgraphs_by_edges.reserve(static_cast<size_t>(max_edges));
  for (int k = 1; k <= max_edges; ++k) {
    metrics.subgraphs_by_edges.push_back(
        registry.Counter("census.subgraphs.edges_" + std::to_string(k)));
  }
  metrics.distinct_encodings = registry.Counter("census.distinct_encodings");
  metrics.label_group_saved = registry.Counter("census.label_group_saved");
  metrics.dmax_blocked = registry.Counter("census.dmax_blocked");
  metrics.encoding_materializations =
      registry.Counter("census.encoding_materializations");
  metrics.budget_truncated_nodes =
      registry.Counter("census.budget_truncated_nodes");
  metrics.stopped_nodes = registry.Counter("census.stopped_nodes");
  return metrics;
}

CensusWorker::CensusWorker(const graph::HetGraph& graph,
                           const CensusConfig& config, CensusMetrics metrics)
    : graph_(graph),
      config_(config),
      metrics_(std::move(metrics)),
      hasher_(graph.num_labels() + (config.mask_start_label ? 1 : 0),
              config.hash_seed),
      num_effective_labels_(graph.num_labels() +
                            (config.mask_start_label ? 1 : 0)),
      node_epoch_(graph.num_nodes(), 0),
      linear_contribution_(graph.num_nodes(), 0) {
  HSGF_CHECK_GE(config_.max_edges, 1) << "census needs at least one edge";
  // Tolerate hooks registered for a smaller emax: missing per-edge-count
  // counters become inert instead of out-of-bounds.
  if (metrics_.registry != nullptr) {
    metrics_.subgraphs_by_edges.resize(
        static_cast<size_t>(config_.max_edges), util::kInvalidMetric);
  }
  batch_.subgraphs_by_edges.assign(static_cast<size_t>(config_.max_edges), 0);
}

graph::Label CensusWorker::EffectiveLabel(graph::NodeId v) const {
  if (config_.mask_start_label && v == start_) {
    return static_cast<graph::Label>(graph_.num_labels());
  }
  return graph_.label(v);
}

uint64_t CensusWorker::MixedContribution(graph::NodeId v) const {
  uint64_t c = linear_contribution_[v];
  return config_.mix_contributions ? Mix(c) : c;
}

graph::NodeId CensusWorker::AddEdge(const CandidateEdge& edge) {
  // Every candidate extends the current subgraph: its source endpoint must
  // already be inside, or the incremental hash bookkeeping drifts silently.
  HSGF_DCHECK(InSubgraph(edge.from))
      << "candidate edge " << edge.from << "->" << edge.to
      << " does not touch the subgraph";
  const graph::Label la = EffectiveLabel(edge.from);
  const graph::Label lb = EffectiveLabel(edge.to);
  current_hash_ -= MixedContribution(edge.from);
  linear_contribution_[edge.from] += hasher_.Power(la, lb);
  current_hash_ += MixedContribution(edge.from);
  if (InSubgraph(edge.to)) {
    current_hash_ -= MixedContribution(edge.to);
    linear_contribution_[edge.to] += hasher_.Power(lb, la);
    current_hash_ += MixedContribution(edge.to);
    return -1;
  }
  node_epoch_[edge.to] = epoch_;
  linear_contribution_[edge.to] = hasher_.Power(lb, la);
  current_hash_ += MixedContribution(edge.to);
  return edge.to;
}

void CensusWorker::RemoveEdge(const CandidateEdge& edge,
                              graph::NodeId added_node) {
  const graph::Label la = EffectiveLabel(edge.from);
  const graph::Label lb = EffectiveLabel(edge.to);
  current_hash_ -= MixedContribution(edge.from);
  linear_contribution_[edge.from] -= hasher_.Power(la, lb);
  current_hash_ += MixedContribution(edge.from);
  if (added_node != -1) {
    current_hash_ -= MixedContribution(edge.to);
    node_epoch_[edge.to] = 0;  // leave the subgraph
    return;
  }
  current_hash_ -= MixedContribution(edge.to);
  linear_contribution_[edge.to] -= hasher_.Power(lb, la);
  current_hash_ += MixedContribution(edge.to);
}

void CensusWorker::AppendFrontierOf(graph::NodeId w, graph::NodeId parent) {
  // Frontier candidates are only collected for nodes that just joined the
  // subgraph; expanding an outside node would enumerate disconnected sets.
  HSGF_DCHECK(InSubgraph(w)) << "frontier expansion of node " << w
                             << " outside the subgraph";
  // Topological heuristic (§3.2): hubs are added but never expanded through;
  // the start node is exempt (§4.3.5).
  if (IsBlocked(w)) {
    ++batch_.dmax_blocked;
    return;
  }
  for (graph::NodeId y : graph_.neighbors(w)) {
    if (!InSubgraph(y)) {
      arena_.push_back({w, y});
    } else if (IsBlocked(y) && y != parent) {
      // Edges back into the subgraph are normally offered by the other
      // endpoint when *it* joins — but blocked nodes never offer their
      // edges, so cycle-closing edges into an in-subgraph hub must be
      // offered here (excluding w's own discovery edge). This keeps the
      // enumerated set independent of candidate order and duplicate-free.
      arena_.push_back({w, y});
    }
  }
}

Encoding CensusWorker::MaterializeEncoding() {
  // Collect the distinct nodes of the current subgraph (at most
  // max_edges + 1 of them) and recount labelled degrees from the edge stack.
  // Both scratch vectors are member-owned: only the first |subgraph| entries
  // are live, so repeated materializations allocate nothing once warm.
  scratch_nodes_.clear();
  for (const auto& [u, v] : edge_stack_) {
    scratch_nodes_.push_back(u);
    scratch_nodes_.push_back(v);
  }
  std::sort(scratch_nodes_.begin(), scratch_nodes_.end());
  scratch_nodes_.erase(
      std::unique(scratch_nodes_.begin(), scratch_nodes_.end()),
      scratch_nodes_.end());
  const size_t count = scratch_nodes_.size();

  if (scratch_signatures_.size() < count) scratch_signatures_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    scratch_signatures_[i].label = EffectiveLabel(scratch_nodes_[i]);
    scratch_signatures_[i].neighbor_counts.assign(num_effective_labels_, 0);
  }
  auto index_of = [this](graph::NodeId v) {
    return static_cast<size_t>(
        std::lower_bound(scratch_nodes_.begin(), scratch_nodes_.end(), v) -
        scratch_nodes_.begin());
  };
  for (const auto& [u, v] : edge_stack_) {
    ++scratch_signatures_[index_of(u)].neighbor_counts[EffectiveLabel(v)];
    ++scratch_signatures_[index_of(v)].neighbor_counts[EffectiveLabel(u)];
  }
  return EncodeSignatureRange(scratch_signatures_.data(), count,
                              num_effective_labels_);
}

void CensusWorker::Extend(size_t seg_begin, size_t seg_end, int depth,
                          CensusResult& result) {
  HSGF_DCHECK_LE(seg_begin, seg_end);
  HSGF_DCHECK_LE(seg_end, seg_stack_.size());
  HSGF_DCHECK_LT(depth, config_.max_edges);
  HSGF_DCHECK_EQ(edge_stack_.size(), static_cast<size_t>(depth));
  Cursor i{seg_begin, seg_begin < seg_end ? seg_stack_[seg_begin].begin : 0};
  while (i.seg < seg_end) {
    HSGF_DCHECK_LT(i.pos, seg_stack_[i.seg].end);
    if (config_.max_subgraphs > 0 &&
        result.total_subgraphs >= config_.max_subgraphs) {
      result.truncated = true;
      return;
    }
    if (has_stop_ && --stop_countdown_ <= 0) {
      stop_countdown_ = kStopCheckInterval;
      if (stop_.StopRequested()) {
        result.stopped = true;
        return;
      }
    }
    const CandidateEdge head = arena_[i.pos];
    const bool head_is_new_node = !InSubgraph(head.to);
    Cursor j = i;
    Advance(j, seg_end);
    int64_t run = 1;
    if (head_is_new_node && config_.group_by_label) {
      // Heterogeneous optimization heuristic: consecutive candidates that
      // extend the same subgraph node with a *new* neighbour of the same
      // label all produce the same encoding (and hash); batch their count.
      // Runs may span segment boundaries — adjacent segments were adjacent
      // in the flat candidate list this layout replaces.
      const graph::Label head_label = EffectiveLabel(head.to);
      while (j.seg < seg_end) {
        const CandidateEdge& cand = arena_[j.pos];
        if (cand.from != head.from || InSubgraph(cand.to) ||
            EffectiveLabel(cand.to) != head_label) {
          break;
        }
        ++run;
        Advance(j, seg_end);
      }
    }

    // Hash of the subgraph after adding `head` (identical for the whole
    // run): both endpoints' contributions change.
    const graph::Label la = EffectiveLabel(head.from);
    const graph::Label lb = EffectiveLabel(head.to);
    uint64_t hash_after = current_hash_;
    hash_after -= MixedContribution(head.from);
    {
      uint64_t c_from = linear_contribution_[head.from] + hasher_.Power(la, lb);
      hash_after += config_.mix_contributions ? Mix(c_from) : c_from;
    }
    if (head_is_new_node) {
      uint64_t c_to = hasher_.Power(lb, la);
      hash_after += config_.mix_contributions ? Mix(c_to) : c_to;
    } else {
      hash_after -= MixedContribution(head.to);
      uint64_t c_to = linear_contribution_[head.to] + hasher_.Power(lb, la);
      hash_after += config_.mix_contributions ? Mix(c_to) : c_to;
    }

    result.counts.Add(hash_after, run);
    result.total_subgraphs += run;
    HSGF_DCHECK_LT(static_cast<size_t>(depth),
                   batch_.subgraphs_by_edges.size());
    batch_.subgraphs_total += run;
    batch_.subgraphs_by_edges[depth] += run;
    if (run > 1) batch_.label_group_saved += run - 1;
    if (config_.keep_encodings && !result.encodings.contains(hash_after)) {
      edge_stack_.push_back({head.from, head.to});
      result.encodings.emplace(hash_after, MaterializeEncoding());
      edge_stack_.pop_back();
      ++batch_.encoding_materializations;
    }

    if (depth + 1 < config_.max_edges) {
      for (Cursor k = i; k.seg != j.seg || k.pos != j.pos;
           Advance(k, seg_end)) {
        if (result.truncated || result.stopped) return;
        const CandidateEdge edge = arena_[k.pos];
        graph::NodeId added = AddEdge(edge);
        edge_stack_.emplace_back(edge.from, edge.to);
        // The child's candidate list: the rest of k's segment, the
        // remaining ancestor segments, then the child's own frontier —
        // all by reference except the frontier. Ancestor arena_ ranges
        // stay valid because descendants only append past them and always
        // resize back on unwind.
        const size_t child_seg_begin = seg_stack_.size();
        if (k.pos + 1 < seg_stack_[k.seg].end) {
          seg_stack_.push_back({k.pos + 1, seg_stack_[k.seg].end});
        }
        for (size_t s = k.seg + 1; s < seg_end; ++s) {
          const Segment inherited = seg_stack_[s];
          seg_stack_.push_back(inherited);
        }
        const size_t child_arena_begin = arena_.size();
        if (added != -1) AppendFrontierOf(added, edge.from);
        if (arena_.size() > child_arena_begin) {
          seg_stack_.push_back({child_arena_begin, arena_.size()});
        }
        Extend(child_seg_begin, seg_stack_.size(), depth + 1, result);
        seg_stack_.resize(child_seg_begin);
        arena_.resize(child_arena_begin);
        edge_stack_.pop_back();
        RemoveEdge(edge, added);
      }
    }
    i = j;
  }
}

void CensusWorker::Run(graph::NodeId start, CensusResult& result,
                       util::StopToken stop) {
  HSGF_CHECK(start >= 0 && start < graph_.num_nodes())
      << "census start node " << start << " outside [0, "
      << graph_.num_nodes() << ")";
  result.counts.Clear();
  result.encodings.clear();
  result.total_subgraphs = 0;
  result.truncated = false;
  result.stopped = false;

  stop_ = std::move(stop);
  has_stop_ = stop_.CanStop();
  stop_countdown_ = kStopCheckInterval;
  if (has_stop_ && stop_.StopRequested()) {
    result.stopped = true;
  } else {
    start_ = start;
    ++epoch_;
    node_epoch_[start] = epoch_;
    linear_contribution_[start] = 0;
    current_hash_ = MixedContribution(start);  // Mix(0) == 0; kept for clarity

    arena_.clear();
    seg_stack_.clear();
    edge_stack_.clear();
    // The start node is always expanded, regardless of dmax.
    for (graph::NodeId y : graph_.neighbors(start)) {
      arena_.push_back({start, y});
    }
    if (!arena_.empty()) seg_stack_.push_back({0, arena_.size()});
    Extend(0, seg_stack_.size(), 0, result);
    // The enumeration must unwind completely — even on truncation or stop —
    // or the epoch-stamped scratch poisons the next Run() on this worker.
    HSGF_DCHECK(edge_stack_.empty())
        << edge_stack_.size() << " edges left on the stack after unwind";
    HSGF_DCHECK_EQ(seg_stack_.size(), arena_.empty() ? size_t{0} : size_t{1})
        << "segment stack not unwound to the root frame";
    HSGF_DCHECK_EQ(linear_contribution_[start], uint64_t{0})
        << "start-node hash contribution not restored";
    HSGF_DCHECK_EQ(current_hash_, MixedContribution(start))
        << "rolling hash did not return to the empty-subgraph state";
    node_epoch_[start] = 0;
  }

  // Flush-on-Run: the hot loop accumulated into batch_; the registry sees
  // one Increment per counter per census instead of one per enumeration
  // step. Snapshots taken mid-extraction therefore lag by at most the
  // in-flight nodes' counts.
  if (metrics_.registry != nullptr) {
    util::MetricsRegistry* registry = metrics_.registry;
    registry->Increment(metrics_.nodes);
    registry->Increment(metrics_.distinct_encodings,
                        static_cast<int64_t>(result.counts.size()));
    if (batch_.subgraphs_total != 0) {
      registry->Increment(metrics_.subgraphs_total, batch_.subgraphs_total);
    }
    for (size_t k = 0; k < batch_.subgraphs_by_edges.size(); ++k) {
      if (batch_.subgraphs_by_edges[k] != 0) {
        registry->Increment(metrics_.subgraphs_by_edges[k],
                            batch_.subgraphs_by_edges[k]);
      }
    }
    if (batch_.label_group_saved != 0) {
      registry->Increment(metrics_.label_group_saved,
                          batch_.label_group_saved);
    }
    if (batch_.dmax_blocked != 0) {
      registry->Increment(metrics_.dmax_blocked, batch_.dmax_blocked);
    }
    if (batch_.encoding_materializations != 0) {
      registry->Increment(metrics_.encoding_materializations,
                          batch_.encoding_materializations);
    }
    if (result.truncated) {
      registry->Increment(metrics_.budget_truncated_nodes);
    }
    if (result.stopped) registry->Increment(metrics_.stopped_nodes);
  }
  batch_.subgraphs_total = 0;
  batch_.label_group_saved = 0;
  batch_.dmax_blocked = 0;
  batch_.encoding_materializations = 0;
  std::fill(batch_.subgraphs_by_edges.begin(),
            batch_.subgraphs_by_edges.end(), 0);
}

CensusResult RunCensus(const graph::HetGraph& graph, graph::NodeId start,
                       const CensusConfig& config) {
  CensusWorker worker(graph, config);
  CensusResult result;
  worker.Run(start, result);
  return result;
}

}  // namespace hsgf::core
