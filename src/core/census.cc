#include "core/census.h"

#include <string>

namespace hsgf::core {

CensusMetrics CensusMetrics::Register(util::MetricsRegistry& registry,
                                      int max_edges) {
  CensusMetrics metrics;
  metrics.registry = &registry;
  metrics.nodes = registry.Counter("census.nodes");
  metrics.subgraphs_total = registry.Counter("census.subgraphs_total");
  metrics.subgraphs_by_edges.reserve(static_cast<size_t>(max_edges));
  for (int k = 1; k <= max_edges; ++k) {
    metrics.subgraphs_by_edges.push_back(
        registry.Counter("census.subgraphs.edges_" + std::to_string(k)));
  }
  metrics.distinct_encodings = registry.Counter("census.distinct_encodings");
  metrics.label_group_saved = registry.Counter("census.label_group_saved");
  metrics.dmax_blocked = registry.Counter("census.dmax_blocked");
  metrics.encoding_materializations =
      registry.Counter("census.encoding_materializations");
  metrics.budget_truncated_nodes =
      registry.Counter("census.budget_truncated_nodes");
  metrics.stopped_nodes = registry.Counter("census.stopped_nodes");
  return metrics;
}

// Home of the CSR worker's code: every other translation unit links against
// this instantiation (see the extern template declaration in census.h).
template class BasicCensusWorker<graph::HetGraph>;

CensusResult RunCensus(const graph::HetGraph& graph, graph::NodeId start,
                       const CensusConfig& config) {
  CensusWorker worker(graph, config);
  CensusResult result;
  worker.Run(start, result);
  return result;
}

}  // namespace hsgf::core
