#ifndef HSGF_CORE_ENCODING_H_
#define HSGF_CORE_ENCODING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/small_graph.h"
#include "graph/het_graph.h"

namespace hsgf::core {

// Characteristic-sequence encoding of heterogeneous subgraphs (paper §3.1).
//
// For a subgraph H and a fixed label universe of size L, each node v gets the
// sequence s_v = (t_0, t_1, ..., t_L) where t_0 = λ(v) and t_l is the number
// of v's neighbours *within H* that carry label l (Eq. 1). The encoding of H
// is the concatenation of all node sequences sorted in descending
// lexicographic order (Eq. 2). Two small subgraphs are isomorphic iff their
// encodings are equal; beyond emax = 5 edges (4 when the label connectivity
// graph has self loops) rare collisions appear — quantified by
// collision_study.h, reproducing the bounds claimed in §3.1.
//
// Byte layout: num_nodes blocks of (L + 1) bytes each:
//   block = [label, t_0-th-label-count, ..., t_(L-1)-th-label-count]
// Counts fit in a byte because subgraphs have at most ~8 edges.

using Encoding = std::vector<uint8_t>;

// Decoded per-node view of an encoding block.
struct NodeSignature {
  graph::Label label = 0;
  std::vector<uint8_t> neighbor_counts;  // size = num_labels

  int TotalDegree() const {
    int total = 0;
    for (uint8_t c : neighbor_counts) total += c;
    return total;
  }

  friend bool operator==(const NodeSignature&, const NodeSignature&) = default;
};

// Builds the canonical encoding from per-node signatures (sorts blocks
// descending). All signatures must have neighbor_counts of size num_labels.
Encoding EncodeSignatures(std::vector<NodeSignature> signatures,
                          int num_labels);

// Allocation-light variant for hot callers (the census materializes one
// encoding per *distinct* hash): sorts the first `count` signatures into
// canonical descending order in place — reordering swaps the signatures'
// heap buffers rather than copying them — and serializes them directly into
// the returned encoding. The signatures stay valid for reuse.
Encoding EncodeSignatureRange(NodeSignature* signatures, size_t count,
                              int num_labels);

// Encodes a SmallGraph over a label universe of size num_labels (must be
// >= graph.MaxLabelPlusOne()). Isolated nodes are included as all-zero
// blocks; the census never produces them, but the collision study does not
// either (it only enumerates connected graphs).
Encoding EncodeSmallGraph(const SmallGraph& graph, int num_labels);

// Splits an encoding back into per-node signatures. Returns std::nullopt if
// the byte length is not a multiple of (num_labels + 1) or a block is
// malformed (label out of range).
std::optional<std::vector<NodeSignature>> DecodeEncoding(
    const Encoding& encoding, int num_labels);

// Human-readable rendering in the paper's style, e.g. "z010 z010 y002"
// (Fig. 1B). Label indices beyond label_names.size() render as '#<index>'
// (used for the masked start label).
std::string EncodingToString(const Encoding& encoding, int num_labels,
                             const std::vector<std::string>& label_names = {});

// Attempts to realize the encoding as a concrete SmallGraph whose labelled
// degree sequences match the signatures (greedy Havel–Hakimi per label
// pair). Used to *draw* the most discriminative subgraph features (Fig. 4).
// Returns std::nullopt when the greedy construction fails; encodings
// produced by the census are always realizable in principle, and greedy
// realization succeeds for all encodings that occur in practice at
// emax <= 6 (verified by tests).
std::optional<SmallGraph> RealizeEncoding(const Encoding& encoding,
                                          int num_labels);

// 64-bit FNV-1a over the encoding bytes; used for exact-keyed census maps
// and vocabulary indices.
uint64_t FnvHash(const Encoding& encoding);

}  // namespace hsgf::core

#endif  // HSGF_CORE_ENCODING_H_
