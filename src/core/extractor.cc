#include "core/extractor.h"

#include <atomic>
#include <cassert>

#include "graph/degree_stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hsgf::core {

ExtractionResult ExtractFeatures(const graph::HetGraph& graph,
                                 const std::vector<graph::NodeId>& nodes,
                                 const ExtractorConfig& config) {
  CensusConfig census_config = config.census;
  if (config.dmax_percentile > 0.0 && config.dmax_percentile < 100.0) {
    census_config.max_degree =
        graph::DegreePercentile(graph, config.dmax_percentile);
  } else if (config.dmax_percentile >= 100.0) {
    census_config.max_degree = 0;
  }

  ExtractionResult result;
  result.effective_dmax = census_config.max_degree;

  std::vector<CensusResult> censuses(nodes.size());
  if (config.record_timings) result.seconds_per_node.assign(nodes.size(), 0.0);

  unsigned num_threads = config.num_threads;
  if (num_threads == 0) num_threads = 0;  // ThreadPool resolves hardware count

  auto process = [&](CensusWorker& worker, size_t i) {
    util::Stopwatch watch;
    worker.Run(nodes[i], censuses[i]);
    if (config.record_timings) {
      result.seconds_per_node[i] = watch.ElapsedSeconds();
    }
  };

  if (num_threads == 1 || nodes.size() <= 1) {
    CensusWorker worker(graph, census_config);
    for (size_t i = 0; i < nodes.size(); ++i) process(worker, i);
  } else {
    util::ThreadPool pool(num_threads);
    std::atomic<size_t> cursor{0};
    const unsigned worker_count = pool.num_threads();
    for (unsigned t = 0; t < worker_count; ++t) {
      pool.Submit([&] {
        // One O(V) census worker per thread; the graph is shared read-only
        // (paper: O(tV + E) memory).
        CensusWorker worker(graph, census_config);
        for (;;) {
          size_t i = cursor.fetch_add(1);
          if (i >= nodes.size()) return;
          process(worker, i);
        }
      });
    }
    pool.Wait();
  }

  for (const CensusResult& census : censuses) {
    result.total_subgraphs += census.total_subgraphs;
  }
  result.features = BuildFeatureSet(censuses, config.features);
  return result;
}

}  // namespace hsgf::core
