#include "core/extractor.h"

namespace hsgf::core {

// Home of the CSR extractor's code: every other translation unit links
// against this instantiation (see the extern template declaration in
// extractor.h).
template class BasicExtractor<graph::HetGraph>;

ExtractionResult ExtractFeatures(const graph::HetGraph& graph,
                                 const std::vector<graph::NodeId>& nodes,
                                 const ExtractorConfig& config) {
  Extractor extractor(graph, config);
  return extractor.Run(nodes);
}

}  // namespace hsgf::core
