#include "core/extractor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>
#include <utility>

#include "graph/degree_stats.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace hsgf::core {

int ResolveDmax(const graph::HetGraph& graph, const ExtractorConfig& config) {
  if (config.dmax_percentile > 0.0 && config.dmax_percentile < 100.0) {
    return graph::DegreePercentile(graph, config.dmax_percentile);
  }
  if (config.dmax_percentile >= 100.0) return 0;  // constraint disabled
  return config.census.max_degree;
}

Extractor::Extractor(const graph::HetGraph& graph,
                     const ExtractorConfig& config)
    : graph_(graph), config_(config), census_config_(config.census) {
  span_resolve_dmax_ = metrics_.Span("extract.resolve_dmax");
  span_census_ = metrics_.Span("extract.census");
  hist_node_micros_ = metrics_.Histogram("census.node_micros");
  gauge_effective_dmax_ = metrics_.Gauge("extract.effective_dmax");
  gauge_nodes_total_ = metrics_.Gauge("extract.nodes_total");
  gauge_features_selected_ = metrics_.Gauge("extract.features_selected");
  census_metrics_ = CensusMetrics::Register(metrics_, census_config_.max_edges);

  {
    util::ScopedSpan span(metrics_, span_resolve_dmax_);
    census_config_.max_degree = ResolveDmax(graph, config);
  }
  metrics_.SetGauge(gauge_effective_dmax_, census_config_.max_degree);

  // The pool (and its threads) lives for the whole session; num_threads == 0
  // resolves to the hardware concurrency inside ThreadPool.
  if (config_.num_threads != 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
}

Extractor::~Extractor() = default;

ExtractionResult Extractor::Run(const std::vector<graph::NodeId>& nodes) {
  return Run(nodes, util::StopToken(), nullptr);
}

ExtractionResult Extractor::Run(const std::vector<graph::NodeId>& nodes,
                                util::StopToken stop, ProgressFn progress) {
  ExtractionResult result;
  result.effective_dmax = census_config_.max_degree;
  metrics_.SetGauge(gauge_nodes_total_, static_cast<double>(nodes.size()));

  std::vector<CensusResult> censuses(nodes.size());
  std::atomic<size_t> nodes_done{0};
  std::atomic<int64_t> subgraphs_so_far{0};
  std::atomic<bool> any_stopped{false};
  // hsgf-lint: allow(mutex-guard) function-local; GUARDED_BY is members-only
  util::Mutex progress_mutex;

  auto process = [&](CensusWorker& worker, size_t i) {
    util::Stopwatch watch;
    worker.Run(nodes[i], censuses[i], stop);
    metrics_.Observe(hist_node_micros_, watch.ElapsedMicros());
    if (censuses[i].stopped) any_stopped.store(true, std::memory_order_relaxed);
    // Plain statistic: relaxed is enough on its own, the acq_rel RMW on
    // nodes_done below publishes it to whichever thread reports next.
    subgraphs_so_far.fetch_add(censuses[i].total_subgraphs,
                               std::memory_order_relaxed);
    const size_t done = nodes_done.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Throttle: a progress report (and its mutex) at most once per
    // kProgressInterval completions, plus the final one — not per node.
    // The acq_rel increment chain guarantees the report that observes
    // done == total also observes every worker's subgraph contribution.
    if (progress &&
        (done % kProgressInterval == 0 || done == nodes.size())) {
      // Re-read under the lock rather than passing the values computed
      // above: reports stay monotone even when workers reach the lock out
      // of order, and the last report carries the final totals.
      util::MutexLock lock(progress_mutex);
      progress({nodes_done.load(std::memory_order_acquire), nodes.size(),
                subgraphs_so_far.load(std::memory_order_relaxed)});
    }
  };

  {
    util::ScopedSpan span(metrics_, span_census_);
    if (pool_ == nullptr || nodes.size() <= 1) {
      CensusWorker worker(graph_, census_config_, census_metrics_);
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (stop.StopRequested()) break;
        process(worker, i);
      }
    } else {
      // Skew-aware dispatch (longest-processing-time-first): census cost is
      // wildly skewed by start-node degree (paper Table 3 reports per-node
      // outliers of 2493 s on hubs). Dequeuing in caller order can land a
      // hub last and serialize the tail of the run on one thread; starting
      // the heaviest nodes first bounds the straggler to roughly the
      // heaviest single node. Results still land in caller slot order —
      // censuses[i] is keyed by the original index — so the feature matrix
      // is identical for any schedule.
      std::vector<size_t> order(nodes.size());
      std::iota(order.begin(), order.end(), size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return graph_.degree(nodes[a]) > graph_.degree(nodes[b]);
      });
      // Work-queue ticket: the RMW hands each index to exactly one thread;
      // no other memory is published through it, hence relaxed.
      std::atomic<size_t> cursor{0};
      const unsigned worker_count = pool_->num_threads();
      for (unsigned t = 0; t < worker_count; ++t) {
        pool_->Submit([&] {
          // One O(V) census worker per thread; the graph is shared
          // read-only (paper: O(tV + E) memory).
          CensusWorker worker(graph_, census_config_, census_metrics_);
          for (;;) {
            if (stop.StopRequested()) return;
            const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= order.size()) return;
            process(worker, order[i]);
          }
        });
      }
      pool_->Wait();
    }
  }

  result.nodes_processed = nodes_done.load();
  result.stopped_early = any_stopped.load(std::memory_order_relaxed) ||
                         result.nodes_processed < nodes.size();
  for (const CensusResult& census : censuses) {
    result.total_subgraphs += census.total_subgraphs;
    if (census.truncated) ++result.truncated_nodes;
  }
  result.features = BuildFeatureSet(censuses, config_.features, &metrics_);
  metrics_.SetGauge(gauge_features_selected_,
                    static_cast<double>(result.features.matrix.cols()));
  result.metrics = metrics_.Snapshot();
  return result;
}

CensusResult Extractor::RunCensus(graph::NodeId node, util::StopToken stop) {
  CensusWorker worker(graph_, census_config_, census_metrics_);
  CensusResult result;
  util::Stopwatch watch;
  worker.Run(node, result, stop);
  metrics_.Observe(hist_node_micros_, watch.ElapsedMicros());
  return result;
}

ExtractionResult ExtractFeatures(const graph::HetGraph& graph,
                                 const std::vector<graph::NodeId>& nodes,
                                 const ExtractorConfig& config) {
  Extractor extractor(graph, config);
  return extractor.Run(nodes);
}

}  // namespace hsgf::core
