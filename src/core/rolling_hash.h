#ifndef HSGF_CORE_ROLLING_HASH_H_
#define HSGF_CORE_ROLLING_HASH_H_

#include <cstdint>
#include <vector>

#include "core/encoding.h"
#include "core/small_graph.h"
#include "graph/het_graph.h"

namespace hsgf::core {

// Incremental rolling hash for characteristic sequences (paper §3.2,
// "Hashing Optimization", Eq. 5).
//
// Each label l gets a pseudo-random odd 64-bit base b_l. A node v with
// in-subgraph neighbour-label counts (t_1, ..., t_L) contributes
//     h(s_v) = Σ_{i=1..L} t_i · b_{λ(v)}^i   (mod 2^64)
// and the subgraph hash is the sum of node contributions. Because the hash
// is a sum of per-(node label, neighbour label) terms, adding one edge (u,v)
// changes it by exactly
//     EdgeDelta(λ(u), λ(v)) = b_{λ(u)}^{λ(v)+1} + b_{λ(v)}^{λ(u)+1},
// a constant per label pair — so the census updates the hash with one table
// lookup per edge instead of re-hashing the whole sequence (the paper's
// "increase the contributions of adjacent nodes accordingly").
//
// The hash is invariant under node order by construction, matching the
// lexicographically sorted canonical encoding. It is *not* injective;
// census.h offers an exact-keyed mode to quantify aliasing, and tests verify
// that hash-keyed and encoding-keyed censuses agree on all evaluation
// workloads.
class RollingHash {
 public:
  static constexpr uint64_t kDefaultSeed = 0x9d5c1f8a2b4e6d03ULL;

  // `num_labels` is the size of the label universe the hash must cover
  // (include the masked start label if used).
  explicit RollingHash(int num_labels, uint64_t seed = kDefaultSeed);

  int num_labels() const { return num_labels_; }

  // Hash delta for adding (or, negated, removing) an edge between a node
  // labelled `a` and a node labelled `b`.
  uint64_t EdgeDelta(graph::Label a, graph::Label b) const {
    return edge_delta_[static_cast<size_t>(a) * num_labels_ + b];
  }

  // b_a^(b+1): the amount a node labelled `a` adds to its own linear
  // contribution when it gains a neighbour labelled `b`.
  uint64_t Power(graph::Label a, graph::Label b) const {
    return power_[static_cast<size_t>(a) * num_labels_ + b];
  }

  // Full hash of a small graph: Σ over edges of EdgeDelta. For testing and
  // the collision study.
  uint64_t HashSmallGraph(const SmallGraph& graph) const;

  // Full hash computed from an encoding's node signatures (Eq. 5 verbatim).
  // Always equals HashSmallGraph of any graph realizing the encoding.
  uint64_t HashEncoding(const Encoding& encoding) const;

 private:
  int num_labels_;
  // power_[a * num_labels_ + i] = b_a^(i+1) mod 2^64.
  std::vector<uint64_t> power_;
  // edge_delta_[a * num_labels_ + b] = b_a^(b+1) + b_b^(a+1).
  std::vector<uint64_t> edge_delta_;
};

}  // namespace hsgf::core

#endif  // HSGF_CORE_ROLLING_HASH_H_
