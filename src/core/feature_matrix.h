#ifndef HSGF_CORE_FEATURE_MATRIX_H_
#define HSGF_CORE_FEATURE_MATRIX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/census.h"
#include "core/encoding.h"
#include "ml/matrix.h"
#include "util/metrics.h"

namespace hsgf::core {

// Options for turning per-node sparse censuses into a dense feature matrix
// shared across nodes (each distinct subgraph encoding is one feature
// column; its value is the count, Eq. 4).
struct FeatureBuildOptions {
  // Drop features whose total count over all nodes is below this.
  int64_t min_total_count = 0;

  // Keep only the `max_features` columns with the largest total counts
  // (0 = keep everything). Ties broken by hash for determinism.
  int max_features = 0;

  // Apply log(1 + count): subgraph counts span many orders of magnitude and
  // the linear models need tamed scales. Tree models are invariant to this.
  bool log1p_transform = true;
};

struct FeatureSet {
  ml::Matrix matrix;                     // rows follow the input node order
  std::vector<uint64_t> feature_hashes;  // column -> encoding hash
  // hash -> canonical encoding, merged from the censuses when available.
  std::unordered_map<uint64_t, Encoding> encodings;
};

// Assembles the dense matrix from one census per node. When `metrics` is
// non-null, the two stages are timed into the "extract.vocabulary" (totals
// + column selection) and "extract.matrix_build" (dense fill + encoding
// merge) spans.
FeatureSet BuildFeatureSet(const std::vector<CensusResult>& censuses,
                           const FeatureBuildOptions& options = {},
                           util::MetricsRegistry* metrics = nullptr);

}  // namespace hsgf::core

#endif  // HSGF_CORE_FEATURE_MATRIX_H_
