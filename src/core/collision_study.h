#ifndef HSGF_CORE_COLLISION_STUDY_H_
#define HSGF_CORE_COLLISION_STUDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/small_graph.h"

namespace hsgf::core {

// Exhaustive verification of the encoding-uniqueness bounds claimed in
// §3.1: the characteristic-sequence encoding distinguishes all connected
// labelled subgraphs up to isomorphism for at most emax = 5 edges when the
// label connectivity graph has no self loops, and emax = 4 when it does.
//
// The study enumerates, for each edge count e, every connected labelled
// graph with e edges (up to label-preserving isomorphism), groups the
// isomorphism classes by encoding, and counts classes whose encoding also
// belongs to a different class.
struct CollisionStudyConfig {
  int max_edges = 6;
  int num_labels = 2;
  // Whether edges between two nodes of the same label are permitted, i.e.
  // whether the label connectivity graph may contain self loops.
  bool allow_same_label_edges = true;
};

struct CollisionStudyReport {
  CollisionStudyConfig config;

  struct PerEdgeCount {
    int edges = 0;
    int64_t isomorphism_classes = 0;
    int64_t distinct_encodings = 0;
    // Classes sharing their encoding with at least one other class.
    int64_t colliding_classes = 0;
  };
  std::vector<PerEdgeCount> by_edges;  // index 0 -> 1 edge, etc.

  // Largest e such that no collisions occur for any edge count <= e
  // (max_edges if none occur at all).
  int max_collision_free_edges = 0;

  // One example collision (two non-isomorphic graphs, same encoding), empty
  // if none was found. Rendered via SmallGraph::ToString.
  std::string example_collision;
};

CollisionStudyReport RunCollisionStudy(const CollisionStudyConfig& config);

// Enumerates all connected labelled graphs with exactly `edges` edges over
// `num_labels` labels, up to label-preserving isomorphism, honouring the
// same-label-edge constraint. Exposed for tests.
std::vector<SmallGraph> EnumerateConnectedLabelledGraphs(
    int edges, int num_labels, bool allow_same_label_edges);

}  // namespace hsgf::core

#endif  // HSGF_CORE_COLLISION_STUDY_H_
