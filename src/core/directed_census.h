#ifndef HSGF_CORE_DIRECTED_CENSUS_H_
#define HSGF_CORE_DIRECTED_CENSUS_H_

#include <cstdint>
#include <vector>

#include "core/census.h"
#include "core/encoding.h"
#include "graph/digraph.h"

namespace hsgf::core {

// Directed heterogeneous subgraph features — the extension the paper
// names as future work ("we suspect that for denser directed networks,
// directed subgraph features may turn out to be more performant", §5).
//
// The characteristic sequence generalizes naturally: each node's block is
//   [ label, in_1 .. in_L, out_1 .. out_L ]
// where in_l / out_l count in-/out-neighbours with label l *inside the
// subgraph*; blocks are sorted in descending lexicographic order exactly as
// in the undirected encoding. The rolling hash uses two independent base
// families (in/out), so antiparallel structure is distinguished.

// A tiny labelled digraph used for encoding, tests and brute-force
// verification (mirrors SmallGraph).
class SmallDiGraph {
 public:
  static constexpr int kMaxNodes = 16;

  SmallDiGraph() = default;
  explicit SmallDiGraph(std::vector<graph::Label> labels);

  int num_nodes() const { return static_cast<int>(labels_.size()); }
  int num_arcs() const;
  graph::Label label(int v) const { return labels_[v]; }

  bool HasArc(int u, int v) const { return (out_[u] >> v) & 1u; }
  void AddArc(int u, int v);

  uint16_t OutMask(int v) const { return out_[v]; }
  uint16_t InMask(int v) const { return in_[v]; }

  // Weak connectivity (directions ignored).
  bool IsWeaklyConnected() const;

  std::vector<std::pair<int, int>> Arcs() const;
  std::string ToString() const;

 private:
  std::vector<graph::Label> labels_;
  uint16_t out_[kMaxNodes] = {};
  uint16_t in_[kMaxNodes] = {};
};

// Canonical directed encoding over a label universe of size num_labels.
Encoding EncodeSmallDiGraph(const SmallDiGraph& graph, int num_labels);

// Human-readable form: blocks "<label>|in:<counts>|out:<counts>".
std::string DirectedEncodingToString(
    const Encoding& encoding, int num_labels,
    const std::vector<std::string>& label_names = {});

// Rooted census over weakly-connected arc subsets with 1..max_edges arcs
// containing the start node. Reuses CensusConfig (max_edges bounds arcs;
// max_degree applies to total degree; group_by_label is accepted but the
// directed worker always enumerates candidates individually).
class DirectedCensusWorker {
 public:
  DirectedCensusWorker(const graph::DirectedHetGraph& graph,
                       const CensusConfig& config);

  DirectedCensusWorker(const DirectedCensusWorker&) = delete;
  DirectedCensusWorker& operator=(const DirectedCensusWorker&) = delete;

  void Run(graph::NodeId start, CensusResult& result);

 private:
  struct CandidateArc {
    graph::NodeId tail;
    graph::NodeId head;
  };

  graph::Label EffectiveLabel(graph::NodeId v) const;
  bool InSubgraph(graph::NodeId v) const { return node_epoch_[v] == epoch_; }
  bool IsBlocked(graph::NodeId v) const {
    return config_.max_degree > 0 && v != start_ &&
           graph_.total_degree(v) > config_.max_degree;
  }

  uint64_t Contribution(uint64_t linear) const;
  // Power of the out-base of `tail`'s label at `head`'s label index, and of
  // the in-base of `head`'s label at `tail`'s label index.
  uint64_t OutPower(graph::Label tail, graph::Label head) const {
    return out_power_[static_cast<size_t>(tail) * num_effective_labels_ + head];
  }
  uint64_t InPower(graph::Label head, graph::Label tail) const {
    return in_power_[static_cast<size_t>(head) * num_effective_labels_ + tail];
  }

  // Zero-copy candidate segments, mirroring CensusWorker: a frame's
  // candidate list is inherited (begin, end) arena_ ranges from ancestor
  // frames plus its own appended frontier, instead of a per-child tail
  // copy.
  struct Segment {
    size_t begin;
    size_t end;  // exclusive; segments are never empty
  };
  struct Cursor {
    size_t seg;
    size_t pos;
  };

  void Advance(Cursor& c, size_t seg_end) const {
    if (++c.pos >= seg_stack_[c.seg].end) {
      ++c.seg;
      c.pos = c.seg < seg_end ? seg_stack_[c.seg].begin : 0;
    }
  }

  graph::NodeId AddArc(const CandidateArc& arc);
  void RemoveArc(const CandidateArc& arc, graph::NodeId added_node);
  void AppendFrontierOf(graph::NodeId w, const CandidateArc& discovery);
  void Extend(size_t seg_begin, size_t seg_end, int depth,
              CensusResult& result);
  Encoding MaterializeEncoding();

  const graph::DirectedHetGraph& graph_;
  CensusConfig config_;
  int num_effective_labels_;
  std::vector<uint64_t> out_power_;
  std::vector<uint64_t> in_power_;

  graph::NodeId start_ = -1;
  uint64_t epoch_ = 0;
  uint64_t current_hash_ = 0;
  std::vector<uint64_t> node_epoch_;
  std::vector<uint64_t> linear_contribution_;
  std::vector<CandidateArc> arena_;  // frontier candidates, one run per frame
  std::vector<Segment> seg_stack_;   // per-frame segment lists, stack-shaped
  std::vector<std::pair<graph::NodeId, graph::NodeId>> arc_stack_;

  // Member-owned scratch for MaterializeEncoding (first |subgraph| entries
  // live per call); avoids fresh allocations per distinct encoding.
  std::vector<graph::NodeId> scratch_nodes_;
  std::vector<std::vector<uint8_t>> scratch_blocks_;
};

CensusResult RunDirectedCensus(const graph::DirectedHetGraph& graph,
                               graph::NodeId start,
                               const CensusConfig& config);

}  // namespace hsgf::core

#endif  // HSGF_CORE_DIRECTED_CENSUS_H_
