#ifndef HSGF_CORE_DIRECTED_CENSUS_H_
#define HSGF_CORE_DIRECTED_CENSUS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/census.h"
#include "core/encoding.h"
#include "graph/digraph.h"
#include "util/check.h"
#include "util/rng.h"

namespace hsgf::core {

// Directed heterogeneous subgraph features — the extension the paper
// names as future work ("we suspect that for denser directed networks,
// directed subgraph features may turn out to be more performant", §5).
//
// The characteristic sequence generalizes naturally: each node's block is
//   [ label, in_1 .. in_L, out_1 .. out_L ]
// where in_l / out_l count in-/out-neighbours with label l *inside the
// subgraph*; blocks are sorted in descending lexicographic order exactly as
// in the undirected encoding. The rolling hash uses two independent base
// families (in/out), so antiparallel structure is distinguished.

// A tiny labelled digraph used for encoding, tests and brute-force
// verification (mirrors SmallGraph).
class SmallDiGraph {
 public:
  static constexpr int kMaxNodes = 16;

  SmallDiGraph() = default;
  explicit SmallDiGraph(std::vector<graph::Label> labels);

  int num_nodes() const { return static_cast<int>(labels_.size()); }
  int num_arcs() const;
  graph::Label label(int v) const { return labels_[v]; }

  bool HasArc(int u, int v) const { return (out_[u] >> v) & 1u; }
  void AddArc(int u, int v);

  uint16_t OutMask(int v) const { return out_[v]; }
  uint16_t InMask(int v) const { return in_[v]; }

  // Weak connectivity (directions ignored).
  bool IsWeaklyConnected() const;

  std::vector<std::pair<int, int>> Arcs() const;
  std::string ToString() const;

 private:
  std::vector<graph::Label> labels_;
  uint16_t out_[kMaxNodes] = {};
  uint16_t in_[kMaxNodes] = {};
};

// Canonical directed encoding over a label universe of size num_labels.
Encoding EncodeSmallDiGraph(const SmallDiGraph& graph, int num_labels);

// Human-readable form: blocks "<label>|in:<counts>|out:<counts>".
std::string DirectedEncodingToString(
    const Encoding& encoding, int num_labels,
    const std::vector<std::string>& label_names = {});

namespace directed_census_internal {

// Descending lexicographic block order (canonical encoding order). Routed
// through the dispatched byte-compare kernel (memcmp semantics); a kernel
// rather than std::lexicographical_compare because GCC's memcmp bound
// analysis misfires on inlined vector<uint8_t> three-way compares under -O3.
inline bool DescendingBytes(const std::vector<uint8_t>& a,
                            const std::vector<uint8_t>& b) {
  const size_t n = std::min(a.size(), b.size());
  const int cmp = simd::CompareBytes(a.data(), b.data(), n);
  if (cmp != 0) return cmp > 0;
  return a.size() > b.size();
}

}  // namespace directed_census_internal

// Rooted census over weakly-connected arc subsets with 1..max_edges arcs
// containing the start node. Reuses CensusConfig (max_edges bounds arcs;
// max_degree applies to total degree; group_by_label is accepted but the
// directed worker always enumerates candidates individually).
//
// Like BasicCensusWorker, the graph is a template parameter; the directed
// census concept is num_nodes(), num_labels(), label(v), total_degree(v),
// successors(v), predecessors(v), both adjacency ranges sorted by
// (label, id) and consumed immediately (never held across another adjacency
// call), so demand-paged storages can back them with a single pinned block.
template <typename GraphT>
class BasicDirectedCensusWorker {
 public:
  BasicDirectedCensusWorker(const GraphT& graph, const CensusConfig& config);

  BasicDirectedCensusWorker(const BasicDirectedCensusWorker&) = delete;
  BasicDirectedCensusWorker& operator=(const BasicDirectedCensusWorker&) =
      delete;

  void Run(graph::NodeId start, CensusResult& result);

 private:
  struct CandidateArc {
    graph::NodeId tail;
    graph::NodeId head;
  };

  graph::Label EffectiveLabel(graph::NodeId v) const;
  bool InSubgraph(graph::NodeId v) const { return node_epoch_[v] == epoch_; }
  bool IsBlocked(graph::NodeId v) const {
    return config_.max_degree > 0 && v != start_ &&
           graph_.total_degree(v) > config_.max_degree;
  }

  uint64_t Contribution(uint64_t linear) const;
  // Power of the out-base of `tail`'s label at `head`'s label index, and of
  // the in-base of `head`'s label at `tail`'s label index.
  uint64_t OutPower(graph::Label tail, graph::Label head) const {
    return out_power_[static_cast<size_t>(tail) * num_effective_labels_ + head];
  }
  uint64_t InPower(graph::Label head, graph::Label tail) const {
    return in_power_[static_cast<size_t>(head) * num_effective_labels_ + tail];
  }

  // Zero-copy candidate segments, mirroring CensusWorker: a frame's
  // candidate list is inherited (begin, end) arena_ ranges from ancestor
  // frames plus its own appended frontier, instead of a per-child tail
  // copy.
  struct Segment {
    size_t begin;
    size_t end;  // exclusive; segments are never empty
  };
  struct Cursor {
    size_t seg;
    size_t pos;
  };

  void Advance(Cursor& c, size_t seg_end) const {
    if (++c.pos >= seg_stack_[c.seg].end) {
      ++c.seg;
      c.pos = c.seg < seg_end ? seg_stack_[c.seg].begin : 0;
    }
  }

  graph::NodeId AddArc(const CandidateArc& arc);
  void RemoveArc(const CandidateArc& arc, graph::NodeId added_node);
  void AppendFrontierOf(graph::NodeId w, const CandidateArc& discovery);
  void Extend(size_t seg_begin, size_t seg_end, int depth,
              CensusResult& result);
  Encoding MaterializeEncoding();

  const GraphT& graph_;
  CensusConfig config_;
  int num_effective_labels_;
  std::vector<uint64_t> out_power_;
  std::vector<uint64_t> in_power_;

  graph::NodeId start_ = -1;
  uint64_t epoch_ = 0;
  uint64_t current_hash_ = 0;
  std::vector<uint64_t> node_epoch_;
  std::vector<uint64_t> linear_contribution_;
  // Finalized (mixed) form of linear_contribution_[v], maintained in
  // lockstep; caching it halves the Mix work per arc add/remove because the
  // old mixed value is read back instead of recomputed (the undirected
  // worker's hash-hoist, applied to the AoS arc walk).
  std::vector<uint64_t> mixed_contribution_;
  std::vector<CandidateArc> arena_;  // frontier candidates, one run per frame
  std::vector<Segment> seg_stack_;   // per-frame segment lists, stack-shaped
  std::vector<std::pair<graph::NodeId, graph::NodeId>> arc_stack_;

  // Member-owned scratch for MaterializeEncoding (first |subgraph| entries
  // live per call); avoids fresh allocations per distinct encoding.
  std::vector<graph::NodeId> scratch_nodes_;
  std::vector<std::vector<uint8_t>> scratch_blocks_;
};

// The directed worker every existing call site uses: the in-RAM digraph.
using DirectedCensusWorker = BasicDirectedCensusWorker<graph::DirectedHetGraph>;

CensusResult RunDirectedCensus(const graph::DirectedHetGraph& graph,
                               graph::NodeId start,
                               const CensusConfig& config);

// --- BasicDirectedCensusWorker implementation -------------------------------

template <typename GraphT>
BasicDirectedCensusWorker<GraphT>::BasicDirectedCensusWorker(
    const GraphT& graph, const CensusConfig& config)
    : graph_(graph),
      config_(config),
      num_effective_labels_(graph.num_labels() +
                            (config.mask_start_label ? 1 : 0)),
      node_epoch_(graph.num_nodes(), 0),
      linear_contribution_(graph.num_nodes(), 0),
      mixed_contribution_(graph.num_nodes(), 0) {
  HSGF_CHECK_GE(config_.max_edges, 1);
  // Two independent odd base families: one for in-, one for out-counts.
  const int L = num_effective_labels_;
  std::vector<uint64_t> out_bases(L);
  std::vector<uint64_t> in_bases(L);
  uint64_t state = config_.hash_seed ^ 0x5851f42d4c957f2dULL;
  for (int l = 0; l < L; ++l) out_bases[l] = util::SplitMix64(state) | 1ULL;
  for (int l = 0; l < L; ++l) in_bases[l] = util::SplitMix64(state) | 1ULL;
  out_power_.resize(static_cast<size_t>(L) * L);
  in_power_.resize(static_cast<size_t>(L) * L);
  for (int a = 0; a < L; ++a) {
    uint64_t po = out_bases[a];
    uint64_t pi = in_bases[a];
    for (int i = 0; i < L; ++i) {
      out_power_[static_cast<size_t>(a) * L + i] = po;
      in_power_[static_cast<size_t>(a) * L + i] = pi;
      po *= out_bases[a];
      pi *= in_bases[a];
    }
  }
}

template <typename GraphT>
graph::Label BasicDirectedCensusWorker<GraphT>::EffectiveLabel(
    graph::NodeId v) const {
  if (config_.mask_start_label && v == start_) {
    return static_cast<graph::Label>(graph_.num_labels());
  }
  return graph_.label(v);
}

template <typename GraphT>
uint64_t BasicDirectedCensusWorker<GraphT>::Contribution(
    uint64_t linear) const {
  return config_.mix_contributions ? census_internal::Mix(linear) : linear;
}

template <typename GraphT>
graph::NodeId BasicDirectedCensusWorker<GraphT>::AddArc(
    const CandidateArc& arc) {
  const graph::Label lt = EffectiveLabel(arc.tail);
  const graph::Label lh = EffectiveLabel(arc.head);
  const uint64_t tail_delta = OutPower(lt, lh);  // tail gains an out-neighbour
  const uint64_t head_delta = InPower(lh, lt);   // head gains an in-neighbour
  graph::NodeId added = -1;

  // At most one endpoint is outside the subgraph (candidate invariant). The
  // pre-edge mixed value is read from the cache instead of recomputed.
  auto apply = [&](graph::NodeId v, uint64_t delta) {
    if (InSubgraph(v)) {
      current_hash_ -= mixed_contribution_[v];
      linear_contribution_[v] += delta;
      mixed_contribution_[v] = Contribution(linear_contribution_[v]);
      current_hash_ += mixed_contribution_[v];
    } else {
      HSGF_DCHECK_EQ(added, -1)
          << "both arc endpoints were outside the subgraph";
      node_epoch_[v] = epoch_;
      linear_contribution_[v] = delta;
      mixed_contribution_[v] = Contribution(delta);
      current_hash_ += mixed_contribution_[v];
      added = v;
    }
  };
  apply(arc.tail, tail_delta);
  apply(arc.head, head_delta);
  return added;
}

template <typename GraphT>
void BasicDirectedCensusWorker<GraphT>::RemoveArc(const CandidateArc& arc,
                                                  graph::NodeId added_node) {
  const graph::Label lt = EffectiveLabel(arc.tail);
  const graph::Label lh = EffectiveLabel(arc.head);
  auto revert = [this](graph::NodeId v, uint64_t delta) {
    current_hash_ -= mixed_contribution_[v];
    linear_contribution_[v] -= delta;
    mixed_contribution_[v] = Contribution(linear_contribution_[v]);
    current_hash_ += mixed_contribution_[v];
  };
  if (added_node == arc.tail) {
    current_hash_ -= mixed_contribution_[arc.tail];
    node_epoch_[arc.tail] = 0;
    revert(arc.head, InPower(lh, lt));
  } else if (added_node == arc.head) {
    current_hash_ -= mixed_contribution_[arc.head];
    node_epoch_[arc.head] = 0;
    revert(arc.tail, OutPower(lt, lh));
  } else {
    revert(arc.tail, OutPower(lt, lh));
    revert(arc.head, InPower(lh, lt));
  }
}

template <typename GraphT>
void BasicDirectedCensusWorker<GraphT>::AppendFrontierOf(
    graph::NodeId w, const CandidateArc& discovery) {
  if (IsBlocked(w)) return;
  auto offer = [&](graph::NodeId tail, graph::NodeId head,
                   graph::NodeId other) {
    if (!InSubgraph(other)) {
      arena_.push_back({tail, head});
    } else if (IsBlocked(other) &&
               !(tail == discovery.tail && head == discovery.head)) {
      // Blocked nodes never offer their own arcs; offer cycle closers here
      // (excluding the discovery arc itself).
      arena_.push_back({tail, head});
    }
  };
  for (graph::NodeId y : graph_.successors(w)) offer(w, y, y);
  for (graph::NodeId y : graph_.predecessors(w)) offer(y, w, y);
}

template <typename GraphT>
Encoding BasicDirectedCensusWorker<GraphT>::MaterializeEncoding() {
  // Member-owned scratch: only the first |subgraph| entries are live, so
  // repeated materializations allocate nothing once warm.
  scratch_nodes_.clear();
  for (const auto& [t, h] : arc_stack_) {
    scratch_nodes_.push_back(t);
    scratch_nodes_.push_back(h);
  }
  std::sort(scratch_nodes_.begin(), scratch_nodes_.end());
  scratch_nodes_.erase(
      std::unique(scratch_nodes_.begin(), scratch_nodes_.end()),
      scratch_nodes_.end());
  const size_t count = scratch_nodes_.size();

  const int L = num_effective_labels_;
  const int block = 1 + 2 * L;
  if (scratch_blocks_.size() < count) scratch_blocks_.resize(count);
  auto index_of = [this](graph::NodeId v) {
    return static_cast<size_t>(
        std::lower_bound(scratch_nodes_.begin(), scratch_nodes_.end(), v) -
        scratch_nodes_.begin());
  };
  for (size_t i = 0; i < count; ++i) {
    scratch_blocks_[i].assign(block, 0);
    scratch_blocks_[i][0] = EffectiveLabel(scratch_nodes_[i]);
  }
  for (const auto& [t, h] : arc_stack_) {
    ++scratch_blocks_[index_of(h)][1 + EffectiveLabel(t)];      // in of head
    ++scratch_blocks_[index_of(t)][1 + L + EffectiveLabel(h)];  // out of tail
  }
  std::sort(scratch_blocks_.begin(), scratch_blocks_.begin() + count,
            directed_census_internal::DescendingBytes);
  Encoding encoding;
  encoding.reserve(count * block);
  for (size_t i = 0; i < count; ++i) {
    encoding.insert(encoding.end(), scratch_blocks_[i].begin(),
                    scratch_blocks_[i].end());
  }
  return encoding;
}

template <typename GraphT>
void BasicDirectedCensusWorker<GraphT>::Extend(size_t seg_begin,
                                               size_t seg_end, int depth,
                                               CensusResult& result) {
  // Candidates are the concatenation of seg_stack_[seg_begin, seg_end)'s
  // arena_ ranges — the same sequence the old per-child tail copy built,
  // so enumeration order (and budget truncation) is bit-identical.
  for (Cursor i{seg_begin, seg_begin < seg_end ? seg_stack_[seg_begin].begin
                                               : 0};
       i.seg < seg_end; Advance(i, seg_end)) {
    if (config_.max_subgraphs > 0 &&
        result.total_subgraphs >= config_.max_subgraphs) {
      result.truncated = true;
      return;
    }
    const CandidateArc arc = arena_[i.pos];
    graph::NodeId added = AddArc(arc);
    arc_stack_.emplace_back(arc.tail, arc.head);

    result.counts.Add(current_hash_, 1);
    ++result.total_subgraphs;
    if (config_.keep_encodings &&
        !result.encodings.contains(current_hash_)) {
      result.encodings.emplace(current_hash_, MaterializeEncoding());
    }

    if (depth + 1 < config_.max_edges) {
      // Child candidates: rest of i's segment, remaining ancestor
      // segments, then the child's own frontier — references only.
      const size_t child_seg_begin = seg_stack_.size();
      if (i.pos + 1 < seg_stack_[i.seg].end) {
        seg_stack_.push_back({i.pos + 1, seg_stack_[i.seg].end});
      }
      for (size_t s = i.seg + 1; s < seg_end; ++s) {
        const Segment inherited = seg_stack_[s];
        seg_stack_.push_back(inherited);
      }
      const size_t child_arena_begin = arena_.size();
      if (added != -1) AppendFrontierOf(added, arc);
      if (arena_.size() > child_arena_begin) {
        seg_stack_.push_back({child_arena_begin, arena_.size()});
      }
      Extend(child_seg_begin, seg_stack_.size(), depth + 1, result);
      seg_stack_.resize(child_seg_begin);
      arena_.resize(child_arena_begin);
    }
    arc_stack_.pop_back();
    RemoveArc(arc, added);
    if (result.truncated) return;
  }
}

template <typename GraphT>
void BasicDirectedCensusWorker<GraphT>::Run(graph::NodeId start,
                                            CensusResult& result) {
  HSGF_CHECK(start >= 0 && start < graph_.num_nodes());
  result.counts.Clear();
  result.encodings.clear();
  result.total_subgraphs = 0;
  result.truncated = false;

  start_ = start;
  ++epoch_;
  node_epoch_[start] = epoch_;
  linear_contribution_[start] = 0;
  mixed_contribution_[start] = Contribution(0);
  current_hash_ = mixed_contribution_[start];

  arena_.clear();
  seg_stack_.clear();
  arc_stack_.clear();
  for (graph::NodeId y : graph_.successors(start)) arena_.push_back({start, y});
  for (graph::NodeId y : graph_.predecessors(start)) arena_.push_back({y, start});
  if (!arena_.empty()) seg_stack_.push_back({0, arena_.size()});
  Extend(0, seg_stack_.size(), 0, result);
  node_epoch_[start] = 0;
}

// The digraph instantiation lives in directed_census.cc (see census.h).
extern template class BasicDirectedCensusWorker<graph::DirectedHetGraph>;

}  // namespace hsgf::core

#endif  // HSGF_CORE_DIRECTED_CENSUS_H_
