#include "core/feature_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/timer.h"

namespace hsgf::core {

FeatureSet BuildFeatureSet(const std::vector<CensusResult>& censuses,
                           const FeatureBuildOptions& options,
                           util::MetricsRegistry* metrics) {
  util::Stopwatch watch;
  // Total count per hash across all nodes.
  std::unordered_map<uint64_t, int64_t> totals;
  for (const CensusResult& census : censuses) {
    census.counts.ForEach(
        [&totals](uint64_t hash, int64_t count) { totals[hash] += count; });
  }

  // Select the feature columns.
  std::vector<std::pair<uint64_t, int64_t>> candidates;
  candidates.reserve(totals.size());
  for (const auto& [hash, total] : totals) {
    if (total >= options.min_total_count) candidates.emplace_back(hash, total);
  }
  if (options.max_features > 0 &&
      static_cast<int>(candidates.size()) > options.max_features) {
    std::nth_element(candidates.begin(),
                     candidates.begin() + options.max_features,
                     candidates.end(), [](const auto& a, const auto& b) {
                       if (a.second != b.second) return a.second > b.second;
                       return a.first < b.first;
                     });
    candidates.resize(options.max_features);
  }
  // Deterministic column order.
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  FeatureSet set;
  set.feature_hashes.reserve(candidates.size());
  std::unordered_map<uint64_t, int> column_of;
  column_of.reserve(candidates.size());
  for (const auto& [hash, total] : candidates) {
    column_of.emplace(hash, static_cast<int>(set.feature_hashes.size()));
    set.feature_hashes.push_back(hash);
  }
  if (metrics != nullptr) {
    metrics->AddSpanSeconds(metrics->Span("extract.vocabulary"),
                            watch.ElapsedSeconds());
    watch.Restart();
  }

  set.matrix = ml::Matrix(static_cast<int>(censuses.size()),
                          static_cast<int>(set.feature_hashes.size()));
  const int num_cols = set.matrix.cols();
  for (size_t r = 0; r < censuses.size(); ++r) {
    double* row = set.matrix.row(static_cast<int>(r));
    censuses[r].counts.ForEach([&](uint64_t hash, int64_t count) {
      auto it = column_of.find(hash);
      if (it == column_of.end()) return;
      // The column map indexes the row buffer raw; a stale or duplicated
      // vocabulary entry here is a heap overflow, not just a wrong answer.
      HSGF_DCHECK(it->second >= 0 && it->second < num_cols)
          << "column " << it->second << " for hash " << hash
          << " outside the " << num_cols << "-column matrix";
      HSGF_DCHECK_GE(count, 0) << "negative census count for hash " << hash;
      row[it->second] = options.log1p_transform
                            ? std::log1p(static_cast<double>(count))
                            : static_cast<double>(count);
    });
    for (const auto& [hash, encoding] : censuses[r].encodings) {
      if (column_of.contains(hash)) set.encodings.emplace(hash, encoding);
    }
  }
  if (metrics != nullptr) {
    metrics->AddSpanSeconds(metrics->Span("extract.matrix_build"),
                            watch.ElapsedSeconds());
  }
  HSGF_CHECK_EQ(set.feature_hashes.size(),
                static_cast<size_t>(set.matrix.cols()))
      << "vocabulary and matrix width disagree";
  return set;
}

}  // namespace hsgf::core
