#include "core/directed_census.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"

namespace hsgf::core {

namespace {

uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Descending lexicographic block order (canonical encoding order). Explicit
// byte loop: every block has the same length, and vector's three-way
// compare trips GCC's memcmp bound analysis under -O3.
bool DescendingBytes(const std::vector<uint8_t>& a,
                     const std::vector<uint8_t>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return a.size() > b.size();
}

}  // namespace

// --- SmallDiGraph ----------------------------------------------------------

SmallDiGraph::SmallDiGraph(std::vector<graph::Label> labels)
    : labels_(std::move(labels)) {
  HSGF_CHECK_LE(num_nodes(), kMaxNodes);
}

int SmallDiGraph::num_arcs() const {
  int total = 0;
  for (int v = 0; v < num_nodes(); ++v) total += std::popcount(out_[v]);
  return total;
}

void SmallDiGraph::AddArc(int u, int v) {
  HSGF_DCHECK(u != v && u >= 0 && v >= 0 && u < num_nodes() &&
              v < num_nodes());
  out_[u] |= static_cast<uint16_t>(1u << v);
  in_[v] |= static_cast<uint16_t>(1u << u);
}

bool SmallDiGraph::IsWeaklyConnected() const {
  if (num_nodes() == 0) return true;
  uint16_t visited = 1u;
  uint16_t frontier = 1u;
  const uint16_t all = static_cast<uint16_t>((1u << num_nodes()) - 1);
  while (frontier != 0 && visited != all) {
    uint16_t next = 0;
    uint16_t f = frontier;
    while (f != 0) {
      int v = std::countr_zero(f);
      f &= static_cast<uint16_t>(f - 1);
      next |= static_cast<uint16_t>(out_[v] | in_[v]);
    }
    frontier = next & static_cast<uint16_t>(~visited);
    visited |= next;
  }
  return visited == all;
}

std::vector<std::pair<int, int>> SmallDiGraph::Arcs() const {
  std::vector<std::pair<int, int>> arcs;
  for (int u = 0; u < num_nodes(); ++u) {
    uint16_t mask = out_[u];
    while (mask != 0) {
      int v = std::countr_zero(mask);
      mask &= static_cast<uint16_t>(mask - 1);
      arcs.emplace_back(u, v);
    }
  }
  return arcs;
}

std::string SmallDiGraph::ToString() const {
  std::ostringstream out;
  out << "labels=[";
  for (int v = 0; v < num_nodes(); ++v) {
    if (v > 0) out << ',';
    out << static_cast<int>(labels_[v]);
  }
  out << "] arcs=[";
  bool first = true;
  for (const auto& [u, v] : Arcs()) {
    if (!first) out << ',';
    first = false;
    out << u << "->" << v;
  }
  out << ']';
  return out.str();
}

// --- Directed encoding ------------------------------------------------------

Encoding EncodeSmallDiGraph(const SmallDiGraph& graph, int num_labels) {
  const int block = 1 + 2 * num_labels;
  std::vector<std::vector<uint8_t>> blocks;
  blocks.reserve(graph.num_nodes());
  for (int v = 0; v < graph.num_nodes(); ++v) {
    std::vector<uint8_t> bytes(block, 0);
    bytes[0] = graph.label(v);
    uint16_t in_mask = graph.InMask(v);
    while (in_mask != 0) {
      int u = std::countr_zero(in_mask);
      in_mask &= static_cast<uint16_t>(in_mask - 1);
      ++bytes[1 + graph.label(u)];
    }
    uint16_t out_mask = graph.OutMask(v);
    while (out_mask != 0) {
      int u = std::countr_zero(out_mask);
      out_mask &= static_cast<uint16_t>(out_mask - 1);
      ++bytes[1 + num_labels + graph.label(u)];
    }
    blocks.push_back(std::move(bytes));
  }
  std::sort(blocks.begin(), blocks.end(), DescendingBytes);
  Encoding encoding;
  encoding.reserve(blocks.size() * block);
  for (const auto& bytes : blocks) {
    encoding.insert(encoding.end(), bytes.begin(), bytes.end());
  }
  return encoding;
}

std::string DirectedEncodingToString(
    const Encoding& encoding, int num_labels,
    const std::vector<std::string>& label_names) {
  const int block = 1 + 2 * num_labels;
  if (block <= 1 || encoding.size() % block != 0) return "<malformed>";
  std::ostringstream out;
  for (size_t offset = 0; offset < encoding.size(); offset += block) {
    if (offset > 0) out << ' ';
    graph::Label label = encoding[offset];
    if (label < label_names.size()) {
      out << label_names[label];
    } else {
      out << '#' << static_cast<int>(label);
    }
    out << "|in:";
    for (int l = 0; l < num_labels; ++l) {
      out << static_cast<int>(encoding[offset + 1 + l]);
    }
    out << "|out:";
    for (int l = 0; l < num_labels; ++l) {
      out << static_cast<int>(encoding[offset + 1 + num_labels + l]);
    }
  }
  return out.str();
}

// --- DirectedCensusWorker ---------------------------------------------------

DirectedCensusWorker::DirectedCensusWorker(const graph::DirectedHetGraph& graph,
                                           const CensusConfig& config)
    : graph_(graph),
      config_(config),
      num_effective_labels_(graph.num_labels() +
                            (config.mask_start_label ? 1 : 0)),
      node_epoch_(graph.num_nodes(), 0),
      linear_contribution_(graph.num_nodes(), 0) {
  HSGF_CHECK_GE(config_.max_edges, 1);
  // Two independent odd base families: one for in-, one for out-counts.
  const int L = num_effective_labels_;
  std::vector<uint64_t> out_bases(L);
  std::vector<uint64_t> in_bases(L);
  uint64_t state = config_.hash_seed ^ 0x5851f42d4c957f2dULL;
  for (int l = 0; l < L; ++l) out_bases[l] = util::SplitMix64(state) | 1ULL;
  for (int l = 0; l < L; ++l) in_bases[l] = util::SplitMix64(state) | 1ULL;
  out_power_.resize(static_cast<size_t>(L) * L);
  in_power_.resize(static_cast<size_t>(L) * L);
  for (int a = 0; a < L; ++a) {
    uint64_t po = out_bases[a];
    uint64_t pi = in_bases[a];
    for (int i = 0; i < L; ++i) {
      out_power_[static_cast<size_t>(a) * L + i] = po;
      in_power_[static_cast<size_t>(a) * L + i] = pi;
      po *= out_bases[a];
      pi *= in_bases[a];
    }
  }
}

graph::Label DirectedCensusWorker::EffectiveLabel(graph::NodeId v) const {
  if (config_.mask_start_label && v == start_) {
    return static_cast<graph::Label>(graph_.num_labels());
  }
  return graph_.label(v);
}

uint64_t DirectedCensusWorker::Contribution(uint64_t linear) const {
  return config_.mix_contributions ? Mix(linear) : linear;
}

graph::NodeId DirectedCensusWorker::AddArc(const CandidateArc& arc) {
  const graph::Label lt = EffectiveLabel(arc.tail);
  const graph::Label lh = EffectiveLabel(arc.head);
  const uint64_t tail_delta = OutPower(lt, lh);  // tail gains an out-neighbour
  const uint64_t head_delta = InPower(lh, lt);   // head gains an in-neighbour
  graph::NodeId added = -1;

  // At most one endpoint is outside the subgraph (candidate invariant).
  auto apply = [&](graph::NodeId v, uint64_t delta) {
    if (InSubgraph(v)) {
      current_hash_ -= Contribution(linear_contribution_[v]);
      linear_contribution_[v] += delta;
      current_hash_ += Contribution(linear_contribution_[v]);
    } else {
      HSGF_DCHECK_EQ(added, -1)
          << "both arc endpoints were outside the subgraph";
      node_epoch_[v] = epoch_;
      linear_contribution_[v] = delta;
      current_hash_ += Contribution(delta);
      added = v;
    }
  };
  apply(arc.tail, tail_delta);
  apply(arc.head, head_delta);
  return added;
}

void DirectedCensusWorker::RemoveArc(const CandidateArc& arc,
                                     graph::NodeId added_node) {
  const graph::Label lt = EffectiveLabel(arc.tail);
  const graph::Label lh = EffectiveLabel(arc.head);
  auto revert = [this](graph::NodeId v, uint64_t delta) {
    current_hash_ -= Contribution(linear_contribution_[v]);
    linear_contribution_[v] -= delta;
    current_hash_ += Contribution(linear_contribution_[v]);
  };
  if (added_node == arc.tail) {
    current_hash_ -= Contribution(linear_contribution_[arc.tail]);
    node_epoch_[arc.tail] = 0;
    revert(arc.head, InPower(lh, lt));
  } else if (added_node == arc.head) {
    current_hash_ -= Contribution(linear_contribution_[arc.head]);
    node_epoch_[arc.head] = 0;
    revert(arc.tail, OutPower(lt, lh));
  } else {
    revert(arc.tail, OutPower(lt, lh));
    revert(arc.head, InPower(lh, lt));
  }
}

void DirectedCensusWorker::AppendFrontierOf(graph::NodeId w,
                                            const CandidateArc& discovery) {
  if (IsBlocked(w)) return;
  auto offer = [&](graph::NodeId tail, graph::NodeId head,
                   graph::NodeId other) {
    if (!InSubgraph(other)) {
      arena_.push_back({tail, head});
    } else if (IsBlocked(other) &&
               !(tail == discovery.tail && head == discovery.head)) {
      // Blocked nodes never offer their own arcs; offer cycle closers here
      // (excluding the discovery arc itself).
      arena_.push_back({tail, head});
    }
  };
  for (graph::NodeId y : graph_.successors(w)) offer(w, y, y);
  for (graph::NodeId y : graph_.predecessors(w)) offer(y, w, y);
}

Encoding DirectedCensusWorker::MaterializeEncoding() {
  // Member-owned scratch: only the first |subgraph| entries are live, so
  // repeated materializations allocate nothing once warm.
  scratch_nodes_.clear();
  for (const auto& [t, h] : arc_stack_) {
    scratch_nodes_.push_back(t);
    scratch_nodes_.push_back(h);
  }
  std::sort(scratch_nodes_.begin(), scratch_nodes_.end());
  scratch_nodes_.erase(
      std::unique(scratch_nodes_.begin(), scratch_nodes_.end()),
      scratch_nodes_.end());
  const size_t count = scratch_nodes_.size();

  const int L = num_effective_labels_;
  const int block = 1 + 2 * L;
  if (scratch_blocks_.size() < count) scratch_blocks_.resize(count);
  auto index_of = [this](graph::NodeId v) {
    return static_cast<size_t>(
        std::lower_bound(scratch_nodes_.begin(), scratch_nodes_.end(), v) -
        scratch_nodes_.begin());
  };
  for (size_t i = 0; i < count; ++i) {
    scratch_blocks_[i].assign(block, 0);
    scratch_blocks_[i][0] = EffectiveLabel(scratch_nodes_[i]);
  }
  for (const auto& [t, h] : arc_stack_) {
    ++scratch_blocks_[index_of(h)][1 + EffectiveLabel(t)];      // in of head
    ++scratch_blocks_[index_of(t)][1 + L + EffectiveLabel(h)];  // out of tail
  }
  std::sort(scratch_blocks_.begin(), scratch_blocks_.begin() + count,
            DescendingBytes);
  Encoding encoding;
  encoding.reserve(count * block);
  for (size_t i = 0; i < count; ++i) {
    encoding.insert(encoding.end(), scratch_blocks_[i].begin(),
                    scratch_blocks_[i].end());
  }
  return encoding;
}

void DirectedCensusWorker::Extend(size_t seg_begin, size_t seg_end, int depth,
                                  CensusResult& result) {
  // Candidates are the concatenation of seg_stack_[seg_begin, seg_end)'s
  // arena_ ranges — the same sequence the old per-child tail copy built,
  // so enumeration order (and budget truncation) is bit-identical.
  for (Cursor i{seg_begin, seg_begin < seg_end ? seg_stack_[seg_begin].begin
                                               : 0};
       i.seg < seg_end; Advance(i, seg_end)) {
    if (config_.max_subgraphs > 0 &&
        result.total_subgraphs >= config_.max_subgraphs) {
      result.truncated = true;
      return;
    }
    const CandidateArc arc = arena_[i.pos];
    graph::NodeId added = AddArc(arc);
    arc_stack_.emplace_back(arc.tail, arc.head);

    result.counts.Add(current_hash_, 1);
    ++result.total_subgraphs;
    if (config_.keep_encodings &&
        !result.encodings.contains(current_hash_)) {
      result.encodings.emplace(current_hash_, MaterializeEncoding());
    }

    if (depth + 1 < config_.max_edges) {
      // Child candidates: rest of i's segment, remaining ancestor
      // segments, then the child's own frontier — references only.
      const size_t child_seg_begin = seg_stack_.size();
      if (i.pos + 1 < seg_stack_[i.seg].end) {
        seg_stack_.push_back({i.pos + 1, seg_stack_[i.seg].end});
      }
      for (size_t s = i.seg + 1; s < seg_end; ++s) {
        const Segment inherited = seg_stack_[s];
        seg_stack_.push_back(inherited);
      }
      const size_t child_arena_begin = arena_.size();
      if (added != -1) AppendFrontierOf(added, arc);
      if (arena_.size() > child_arena_begin) {
        seg_stack_.push_back({child_arena_begin, arena_.size()});
      }
      Extend(child_seg_begin, seg_stack_.size(), depth + 1, result);
      seg_stack_.resize(child_seg_begin);
      arena_.resize(child_arena_begin);
    }
    arc_stack_.pop_back();
    RemoveArc(arc, added);
    if (result.truncated) return;
  }
}

void DirectedCensusWorker::Run(graph::NodeId start, CensusResult& result) {
  HSGF_CHECK(start >= 0 && start < graph_.num_nodes());
  result.counts.Clear();
  result.encodings.clear();
  result.total_subgraphs = 0;
  result.truncated = false;

  start_ = start;
  ++epoch_;
  node_epoch_[start] = epoch_;
  linear_contribution_[start] = 0;
  current_hash_ = Contribution(0);

  arena_.clear();
  seg_stack_.clear();
  arc_stack_.clear();
  for (graph::NodeId y : graph_.successors(start)) arena_.push_back({start, y});
  for (graph::NodeId y : graph_.predecessors(start)) arena_.push_back({y, start});
  if (!arena_.empty()) seg_stack_.push_back({0, arena_.size()});
  Extend(0, seg_stack_.size(), 0, result);
  node_epoch_[start] = 0;
}

CensusResult RunDirectedCensus(const graph::DirectedHetGraph& graph,
                               graph::NodeId start,
                               const CensusConfig& config) {
  DirectedCensusWorker worker(graph, config);
  CensusResult result;
  worker.Run(start, result);
  return result;
}

}  // namespace hsgf::core
