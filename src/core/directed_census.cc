#include "core/directed_census.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/check.h"

namespace hsgf::core {

// --- SmallDiGraph ----------------------------------------------------------

SmallDiGraph::SmallDiGraph(std::vector<graph::Label> labels)
    : labels_(std::move(labels)) {
  HSGF_CHECK_LE(num_nodes(), kMaxNodes);
}

int SmallDiGraph::num_arcs() const {
  int total = 0;
  for (int v = 0; v < num_nodes(); ++v) total += std::popcount(out_[v]);
  return total;
}

void SmallDiGraph::AddArc(int u, int v) {
  HSGF_DCHECK(u != v && u >= 0 && v >= 0 && u < num_nodes() &&
              v < num_nodes());
  out_[u] |= static_cast<uint16_t>(1u << v);
  in_[v] |= static_cast<uint16_t>(1u << u);
}

bool SmallDiGraph::IsWeaklyConnected() const {
  if (num_nodes() == 0) return true;
  uint16_t visited = 1u;
  uint16_t frontier = 1u;
  const uint16_t all = static_cast<uint16_t>((1u << num_nodes()) - 1);
  while (frontier != 0 && visited != all) {
    uint16_t next = 0;
    uint16_t f = frontier;
    while (f != 0) {
      int v = std::countr_zero(f);
      f &= static_cast<uint16_t>(f - 1);
      next |= static_cast<uint16_t>(out_[v] | in_[v]);
    }
    frontier = next & static_cast<uint16_t>(~visited);
    visited |= next;
  }
  return visited == all;
}

std::vector<std::pair<int, int>> SmallDiGraph::Arcs() const {
  std::vector<std::pair<int, int>> arcs;
  for (int u = 0; u < num_nodes(); ++u) {
    uint16_t mask = out_[u];
    while (mask != 0) {
      int v = std::countr_zero(mask);
      mask &= static_cast<uint16_t>(mask - 1);
      arcs.emplace_back(u, v);
    }
  }
  return arcs;
}

std::string SmallDiGraph::ToString() const {
  std::ostringstream out;
  out << "labels=[";
  for (int v = 0; v < num_nodes(); ++v) {
    if (v > 0) out << ',';
    out << static_cast<int>(labels_[v]);
  }
  out << "] arcs=[";
  bool first = true;
  for (const auto& [u, v] : Arcs()) {
    if (!first) out << ',';
    first = false;
    out << u << "->" << v;
  }
  out << ']';
  return out.str();
}

// --- Directed encoding ------------------------------------------------------

Encoding EncodeSmallDiGraph(const SmallDiGraph& graph, int num_labels) {
  const int block = 1 + 2 * num_labels;
  std::vector<std::vector<uint8_t>> blocks;
  blocks.reserve(graph.num_nodes());
  for (int v = 0; v < graph.num_nodes(); ++v) {
    std::vector<uint8_t> bytes(block, 0);
    bytes[0] = graph.label(v);
    uint16_t in_mask = graph.InMask(v);
    while (in_mask != 0) {
      int u = std::countr_zero(in_mask);
      in_mask &= static_cast<uint16_t>(in_mask - 1);
      ++bytes[1 + graph.label(u)];
    }
    uint16_t out_mask = graph.OutMask(v);
    while (out_mask != 0) {
      int u = std::countr_zero(out_mask);
      out_mask &= static_cast<uint16_t>(out_mask - 1);
      ++bytes[1 + num_labels + graph.label(u)];
    }
    blocks.push_back(std::move(bytes));
  }
  std::sort(blocks.begin(), blocks.end(),
            directed_census_internal::DescendingBytes);
  Encoding encoding;
  encoding.reserve(blocks.size() * block);
  for (const auto& bytes : blocks) {
    encoding.insert(encoding.end(), bytes.begin(), bytes.end());
  }
  return encoding;
}

std::string DirectedEncodingToString(
    const Encoding& encoding, int num_labels,
    const std::vector<std::string>& label_names) {
  const int block = 1 + 2 * num_labels;
  if (block <= 1 || encoding.size() % block != 0) return "<malformed>";
  std::ostringstream out;
  for (size_t offset = 0; offset < encoding.size(); offset += block) {
    if (offset > 0) out << ' ';
    graph::Label label = encoding[offset];
    if (label < label_names.size()) {
      out << label_names[label];
    } else {
      out << '#' << static_cast<int>(label);
    }
    out << "|in:";
    for (int l = 0; l < num_labels; ++l) {
      out << static_cast<int>(encoding[offset + 1 + l]);
    }
    out << "|out:";
    for (int l = 0; l < num_labels; ++l) {
      out << static_cast<int>(encoding[offset + 1 + num_labels + l]);
    }
  }
  return out.str();
}

// --- DirectedCensusWorker ---------------------------------------------------

// Home of the digraph worker's code (see the extern template declaration in
// directed_census.h).
template class BasicDirectedCensusWorker<graph::DirectedHetGraph>;

CensusResult RunDirectedCensus(const graph::DirectedHetGraph& graph,
                               graph::NodeId start,
                               const CensusConfig& config) {
  DirectedCensusWorker worker(graph, config);
  CensusResult result;
  worker.Run(start, result);
  return result;
}

}  // namespace hsgf::core
