#include "core/encoding.h"

#include <algorithm>
#include <sstream>

#include "simd/kernels.h"
#include "util/check.h"

namespace hsgf::core {

Encoding EncodeSignatureRange(NodeSignature* signatures, size_t count,
                              int num_labels) {
  HSGF_CHECK_GE(num_labels, 1);
  const int block = num_labels + 1;
  // Descending lexicographic block order (Eq. 2: s_v1 >= s_v2 >= ... >=
  // s_vn), compared directly on the signatures so no per-block byte vectors
  // are materialized. A block is [label, counts...], so label compares
  // first; the count arrays go through the dispatched byte-compare kernel
  // (memcmp semantics — hand-rolled because GCC's memcmp bound analysis
  // misfires on inlined vector<uint8_t> three-way compares under -O3).
  const simd::KernelTable& kernels = simd::ActiveKernels();
  auto descending = [&kernels](const NodeSignature& a,
                               const NodeSignature& b) {
    if (a.label != b.label) return a.label > b.label;
    const size_t n = std::min(a.neighbor_counts.size(),
                              b.neighbor_counts.size());
    const int cmp =
        kernels.compare_bytes(a.neighbor_counts.data(),
                              b.neighbor_counts.data(), n);
    if (cmp != 0) return cmp > 0;
    return a.neighbor_counts.size() > b.neighbor_counts.size();
  };
  std::sort(signatures, signatures + count, descending);
  Encoding encoding;
  encoding.reserve(count * block);
  for (size_t i = 0; i < count; ++i) {
    const NodeSignature& sig = signatures[i];
    HSGF_DCHECK_EQ(static_cast<int>(sig.neighbor_counts.size()), num_labels);
    encoding.push_back(sig.label);
    encoding.insert(encoding.end(), sig.neighbor_counts.begin(),
                    sig.neighbor_counts.end());
  }
  // Canonicality (what makes equal subgraphs hash equal): fixed block size,
  // blocks in descending order.
  HSGF_DCHECK_EQ(encoding.size(), count * block);
  HSGF_DCHECK(std::is_sorted(signatures, signatures + count, descending))
      << "encoding blocks are not in canonical descending order";
  return encoding;
}

Encoding EncodeSignatures(std::vector<NodeSignature> signatures,
                          int num_labels) {
  return EncodeSignatureRange(signatures.data(), signatures.size(),
                              num_labels);
}

Encoding EncodeSmallGraph(const SmallGraph& graph, int num_labels) {
  HSGF_CHECK_GE(num_labels, graph.MaxLabelPlusOne())
      << "label alphabet too small for the graph's labels";
  std::vector<NodeSignature> signatures(graph.num_nodes());
  for (int v = 0; v < graph.num_nodes(); ++v) {
    signatures[v].label = graph.label(v);
    signatures[v].neighbor_counts.assign(num_labels, 0);
    for (int l = 0; l < num_labels; ++l) {
      signatures[v].neighbor_counts[l] = static_cast<uint8_t>(
          graph.LabelDegree(v, static_cast<graph::Label>(l)));
    }
  }
  return EncodeSignatures(std::move(signatures), num_labels);
}

std::optional<std::vector<NodeSignature>> DecodeEncoding(
    const Encoding& encoding, int num_labels) {
  const int block = num_labels + 1;
  if (block <= 1 || encoding.size() % block != 0) return std::nullopt;
  std::vector<NodeSignature> signatures;
  signatures.reserve(encoding.size() / block);
  for (size_t offset = 0; offset < encoding.size(); offset += block) {
    NodeSignature sig;
    sig.label = encoding[offset];
    sig.neighbor_counts.assign(encoding.begin() + offset + 1,
                               encoding.begin() + offset + block);
    signatures.push_back(std::move(sig));
  }
  return signatures;
}

std::string EncodingToString(const Encoding& encoding, int num_labels,
                             const std::vector<std::string>& label_names) {
  auto signatures = DecodeEncoding(encoding, num_labels);
  if (!signatures.has_value()) return "<malformed encoding>";
  std::ostringstream out;
  bool first = true;
  for (const NodeSignature& sig : *signatures) {
    if (!first) out << ' ';
    first = false;
    if (sig.label < label_names.size()) {
      out << label_names[sig.label];
    } else {
      out << '#' << static_cast<int>(sig.label);
    }
    for (uint8_t count : sig.neighbor_counts) {
      out << static_cast<int>(count);
    }
  }
  return out.str();
}

namespace {

// Greedily realizes the bipartite demands between two distinct label groups
// (Gale–Ryser style): repeatedly satisfy the left node with the largest
// remaining demand using the right nodes with the largest remaining demands.
// `left`/`right` index into `demand_*`; edges are appended to `graph`.
bool RealizeBipartite(const std::vector<int>& left, const std::vector<int>& right,
                      std::vector<int>& demand_left,
                      std::vector<int>& demand_right, SmallGraph& graph) {
  // Track which pairs are used (simple graph: no parallel edges).
  for (;;) {
    // Left node with maximum remaining demand.
    int best = -1;
    for (int v : left) {
      if (demand_left[v] > 0 && (best == -1 || demand_left[v] > demand_left[best])) {
        best = v;
      }
    }
    if (best == -1) break;
    // Connect to the demand_left[best] right nodes with highest demand that
    // are not already adjacent.
    std::vector<int> candidates;
    for (int u : right) {
      if (demand_right[u] > 0 && !graph.HasEdge(best, u)) candidates.push_back(u);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](int a, int b) { return demand_right[a] > demand_right[b]; });
    if (static_cast<int>(candidates.size()) < demand_left[best]) return false;
    int need = demand_left[best];
    for (int i = 0; i < need; ++i) {
      graph.AddEdge(best, candidates[i]);
      --demand_right[candidates[i]];
    }
    demand_left[best] = 0;
  }
  // All right demand must be consumed too.
  for (int u : right) {
    if (demand_right[u] != 0) return false;
  }
  return true;
}

// Havel–Hakimi within a single label group (demands toward the own label).
bool RealizeWithinGroup(const std::vector<int>& group, std::vector<int>& demand,
                        SmallGraph& graph) {
  for (;;) {
    int best = -1;
    for (int v : group) {
      if (demand[v] > 0 && (best == -1 || demand[v] > demand[best])) best = v;
    }
    if (best == -1) return true;
    std::vector<int> candidates;
    for (int u : group) {
      if (u != best && demand[u] > 0 && !graph.HasEdge(best, u)) {
        candidates.push_back(u);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](int a, int b) { return demand[a] > demand[b]; });
    if (static_cast<int>(candidates.size()) < demand[best]) return false;
    int need = demand[best];
    for (int i = 0; i < need; ++i) {
      graph.AddEdge(best, candidates[i]);
      --demand[candidates[i]];
    }
    demand[best] = 0;
  }
}

}  // namespace

std::optional<SmallGraph> RealizeEncoding(const Encoding& encoding,
                                          int num_labels) {
  auto signatures = DecodeEncoding(encoding, num_labels);
  if (!signatures.has_value()) return std::nullopt;
  const int n = static_cast<int>(signatures->size());
  if (n > SmallGraph::kMaxNodes) return std::nullopt;

  std::vector<graph::Label> labels(n);
  for (int v = 0; v < n; ++v) labels[v] = (*signatures)[v].label;
  SmallGraph graph(std::move(labels));

  // Group nodes by label.
  std::vector<std::vector<int>> by_label(num_labels);
  for (int v = 0; v < n; ++v) by_label[(*signatures)[v].label].push_back(v);

  // The subproblems decompose exactly per label pair because a node's demand
  // toward label l can only be satisfied by l-labelled nodes.
  for (int a = 0; a < num_labels; ++a) {
    for (int b = a; b < num_labels; ++b) {
      std::vector<int> demand_a(n, 0);
      std::vector<int> demand_b(n, 0);
      int64_t total_a = 0;
      int64_t total_b = 0;
      for (int v : by_label[a]) {
        demand_a[v] = (*signatures)[v].neighbor_counts[b];
        total_a += demand_a[v];
      }
      for (int u : by_label[b]) {
        demand_b[u] = (*signatures)[u].neighbor_counts[a];
        total_b += demand_b[u];
      }
      if (a == b) {
        if (total_a % 2 != 0) return std::nullopt;
        if (!RealizeWithinGroup(by_label[a], demand_a, graph)) {
          return std::nullopt;
        }
      } else {
        if (total_a != total_b) return std::nullopt;
        if (!RealizeBipartite(by_label[a], by_label[b], demand_a, demand_b,
                              graph)) {
          return std::nullopt;
        }
      }
    }
  }
  return graph;
}

uint64_t FnvHash(const Encoding& encoding) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (uint8_t byte : encoding) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace hsgf::core
