#include "core/rolling_hash.h"

#include <cassert>

#include "simd/kernels.h"
#include "util/rng.h"

namespace hsgf::core {

RollingHash::RollingHash(int num_labels, uint64_t seed)
    : num_labels_(num_labels) {
  assert(num_labels > 0);
  // Draw one odd base per label from a SplitMix64 stream; odd bases keep the
  // multiplicative order high modulo 2^64.
  std::vector<uint64_t> bases(num_labels);
  uint64_t state = seed;
  for (int l = 0; l < num_labels; ++l) {
    bases[l] = util::SplitMix64(state) | 1ULL;
  }
  power_.resize(static_cast<size_t>(num_labels) * num_labels);
  for (int a = 0; a < num_labels; ++a) {
    uint64_t p = bases[a];
    for (int i = 0; i < num_labels; ++i) {
      power_[static_cast<size_t>(a) * num_labels + i] = p;  // b_a^(i+1)
      p *= bases[a];
    }
  }
  edge_delta_.resize(static_cast<size_t>(num_labels) * num_labels);
  for (int a = 0; a < num_labels; ++a) {
    for (int b = 0; b < num_labels; ++b) {
      edge_delta_[static_cast<size_t>(a) * num_labels + b] =
          power_[static_cast<size_t>(a) * num_labels + b] +
          power_[static_cast<size_t>(b) * num_labels + a];
    }
  }
}

uint64_t RollingHash::HashSmallGraph(const SmallGraph& graph) const {
  uint64_t hash = 0;
  for (const auto& [u, v] : graph.Edges()) {
    hash += EdgeDelta(graph.label(u), graph.label(v));
  }
  return hash;
}

uint64_t RollingHash::HashEncoding(const Encoding& encoding) const {
  auto signatures = DecodeEncoding(encoding, num_labels_);
  assert(signatures.has_value());
  // Eq. 5 per node is a dot product of the u8 neighbour-count row against
  // the label's power row; the dispatched kernel widens and sums mod 2^64
  // (commutative, so vector accumulation order cannot change the result).
  const simd::KernelTable& kernels = simd::ActiveKernels();
  uint64_t hash = 0;
  for (const NodeSignature& sig : *signatures) {
    const uint64_t* powers =
        power_.data() + static_cast<size_t>(sig.label) * num_labels_;
    hash += kernels.dot_u8_u64(sig.neighbor_counts.data(), powers,
                               static_cast<size_t>(num_labels_));
  }
  return hash;
}

}  // namespace hsgf::core
