#ifndef HSGF_CORE_ISOMORPHISM_H_
#define HSGF_CORE_ISOMORPHISM_H_

#include <cstdint>
#include <vector>

#include "core/small_graph.h"

namespace hsgf::core {

// Exact label-preserving isomorphism for SmallGraphs (paper §3, "Graph
// Isomorphism"): G ≃ G' iff a bijection φ exists with uv ∈ E ⇔ φ(u)φ(v) ∈ E'
// and λ(v) = λ(φ(v)).
//
// Implementation: iterative refinement of node invariants (label, degree,
// sorted multiset of neighbour invariants) to split nodes into candidate
// classes, then backtracking search over class-respecting bijections. Small
// graphs only (≤ 16 nodes); used by tests and the §3.1 collision study,
// never on the census hot path.
bool AreIsomorphic(const SmallGraph& a, const SmallGraph& b);

// A canonical 64-bit invariant: equal for isomorphic graphs (by
// construction), and distinct for non-isomorphic graphs up to hashing
// accidents. Computed from the canonical form below. Useful for bucketing
// before exact checks.
uint64_t IsomorphismInvariant(const SmallGraph& graph);

// The lexicographically smallest (labels, adjacency-bits) representation
// over all node permutations that respect the refinement classes. Two graphs
// are isomorphic iff their canonical forms are equal. Exponential worst
// case; fine for ≤ 8-node subgraphs.
std::vector<uint8_t> CanonicalForm(const SmallGraph& graph);

}  // namespace hsgf::core

#endif  // HSGF_CORE_ISOMORPHISM_H_
