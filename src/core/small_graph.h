#ifndef HSGF_CORE_SMALL_GRAPH_H_
#define HSGF_CORE_SMALL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/het_graph.h"

namespace hsgf::core {

// A tiny labelled undirected graph (<= kMaxNodes nodes) with bitset
// adjacency. This is the working representation for everything that reasons
// about subgraphs *as objects*: the characteristic-sequence encoder, the
// exact isomorphism test, and the collision study of §3.1. The census itself
// (census.h) never materializes SmallGraphs on its hot path.
class SmallGraph {
 public:
  static constexpr int kMaxNodes = 16;

  SmallGraph() = default;

  // Creates `num_nodes` isolated nodes with the given labels.
  explicit SmallGraph(std::vector<graph::Label> labels);

  int num_nodes() const { return static_cast<int>(labels_.size()); }
  int num_edges() const;

  graph::Label label(int v) const { return labels_[v]; }
  void set_label(int v, graph::Label l) { labels_[v] = l; }

  bool HasEdge(int u, int v) const {
    return (adjacency_[u] >> v) & 1u;
  }
  void AddEdge(int u, int v);
  void RemoveEdge(int u, int v);

  // Bitmask of v's neighbours.
  uint16_t NeighborMask(int v) const { return adjacency_[v]; }

  int Degree(int v) const;

  // Number of v's neighbours with label l.
  int LabelDegree(int v, graph::Label l) const;

  bool IsConnected() const;

  // Largest label value present plus one (0 for the empty graph).
  int MaxLabelPlusOne() const;

  // Returns the subgraph induced on the nodes whose bits are set in `mask`
  // (node ids are compacted in ascending order of original id).
  SmallGraph InducedOn(uint16_t mask) const;

  // All edges as (u, v) with u < v, ordered.
  std::vector<std::pair<int, int>> Edges() const;

  // Debug rendering: "labels=[a,b,a] edges=[(0,1),(1,2)]".
  std::string ToString(
      const std::vector<std::string>& label_names = {}) const;

 private:
  std::vector<graph::Label> labels_;
  uint16_t adjacency_[kMaxNodes] = {};
};

}  // namespace hsgf::core

#endif  // HSGF_CORE_SMALL_GRAPH_H_
