#include "core/isomorphism.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>

namespace hsgf::core {

namespace {

uint64_t MixHash(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

// Iterative invariant refinement: start from (label, degree) and fold in the
// sorted multiset of neighbour invariants until stable (n rounds suffice).
// Invariants are preserved by any label-preserving isomorphism, so nodes
// that can possibly correspond always share an invariant.
std::vector<uint64_t> RefineInvariants(const SmallGraph& graph) {
  const int n = graph.num_nodes();
  std::vector<uint64_t> invariant(n);
  for (int v = 0; v < n; ++v) {
    invariant[v] = MixHash(graph.label(v) + 1, graph.Degree(v) + 1);
  }
  std::vector<uint64_t> next(n);
  std::vector<uint64_t> neighbor_invs;
  for (int round = 0; round < n; ++round) {
    for (int v = 0; v < n; ++v) {
      neighbor_invs.clear();
      uint16_t mask = graph.NeighborMask(v);
      while (mask != 0) {
        int u = std::countr_zero(mask);
        mask &= static_cast<uint16_t>(mask - 1);
        neighbor_invs.push_back(invariant[u]);
      }
      std::sort(neighbor_invs.begin(), neighbor_invs.end());
      uint64_t h = invariant[v];
      for (uint64_t ni : neighbor_invs) h = MixHash(h, ni);
      next[v] = h;
    }
    invariant.swap(next);
  }
  return invariant;
}

// Serializes the graph under the node order given by `perm` (perm[i] =
// original node placed at position i): labels first, then the upper
// triangle of the adjacency matrix as bytes.
std::vector<uint8_t> Serialize(const SmallGraph& graph,
                               const std::vector<int>& perm) {
  const int n = graph.num_nodes();
  std::vector<uint8_t> bytes;
  bytes.reserve(n + n * (n - 1) / 2);
  for (int i = 0; i < n; ++i) bytes.push_back(graph.label(perm[i]));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      bytes.push_back(graph.HasEdge(perm[i], perm[j]) ? 1 : 0);
    }
  }
  return bytes;
}

}  // namespace

std::vector<uint8_t> CanonicalForm(const SmallGraph& graph) {
  const int n = graph.num_nodes();
  if (n == 0) return {};
  std::vector<uint64_t> invariant = RefineInvariants(graph);

  // Sort nodes by invariant to fix the order of classes; only permutations
  // within equal-invariant runs need to be explored (isomorphisms map
  // classes onto classes).
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (invariant[a] != invariant[b]) return invariant[a] < invariant[b];
    return a < b;
  });

  // Identify runs of equal invariants.
  std::vector<std::pair<int, int>> runs;  // [begin, end) into `order`
  for (int begin = 0; begin < n;) {
    int end = begin + 1;
    while (end < n && invariant[order[end]] == invariant[order[begin]]) ++end;
    runs.emplace_back(begin, end);
    begin = end;
  }

  std::vector<uint8_t> best;
  std::vector<int> perm = order;
  // Enumerate the Cartesian product of within-run permutations via recursive
  // std::next_permutation sweeps.
  auto explore = [&](auto&& self, size_t run_index) -> void {
    if (run_index == runs.size()) {
      std::vector<uint8_t> bytes = Serialize(graph, perm);
      if (best.empty() || bytes < best) best = std::move(bytes);
      return;
    }
    auto [begin, end] = runs[run_index];
    std::sort(perm.begin() + begin, perm.begin() + end);
    do {
      self(self, run_index + 1);
    } while (std::next_permutation(perm.begin() + begin, perm.begin() + end));
  };
  explore(explore, 0);
  return best;
}

bool AreIsomorphic(const SmallGraph& a, const SmallGraph& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  // Cheap multiset invariant checks before the exponential canonical form.
  std::vector<uint64_t> inv_a = RefineInvariants(a);
  std::vector<uint64_t> inv_b = RefineInvariants(b);
  std::sort(inv_a.begin(), inv_a.end());
  std::sort(inv_b.begin(), inv_b.end());
  if (inv_a != inv_b) return false;
  return CanonicalForm(a) == CanonicalForm(b);
}

uint64_t IsomorphismInvariant(const SmallGraph& graph) {
  std::vector<uint8_t> canonical = CanonicalForm(graph);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (uint8_t byte : canonical) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace hsgf::core
