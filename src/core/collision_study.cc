#include "core/collision_study.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/encoding.h"
#include "core/isomorphism.h"

namespace hsgf::core {

namespace {

// String key for byte vectors (canonical forms / encodings).
std::string BytesKey(const std::vector<uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

// All non-isomorphic *unlabelled* connected graphs on exactly n nodes with
// exactly e edges (every node incident to an edge; implied by connectivity
// for n >= 2).
std::vector<SmallGraph> EnumerateUnlabelled(int n, int e) {
  std::vector<std::pair<int, int>> slots;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) slots.emplace_back(u, v);
  }
  const int m = static_cast<int>(slots.size());
  std::vector<SmallGraph> classes;
  std::unordered_set<std::string> seen;
  if (e > m) return classes;

  // Enumerate e-subsets of the m candidate edges.
  std::vector<int> pick(e);
  for (int i = 0; i < e; ++i) pick[i] = i;
  for (;;) {
    SmallGraph graph(std::vector<graph::Label>(n, 0));
    for (int i : pick) graph.AddEdge(slots[i].first, slots[i].second);
    if (graph.IsConnected()) {
      std::string key = BytesKey(CanonicalForm(graph));
      if (seen.insert(std::move(key)).second) classes.push_back(graph);
    }
    // Next combination.
    int i = e - 1;
    while (i >= 0 && pick[i] == m - e + i) --i;
    if (i < 0) break;
    ++pick[i];
    for (int j = i + 1; j < e; ++j) pick[j] = pick[j - 1] + 1;
  }
  return classes;
}

bool HasSameLabelEdge(const SmallGraph& graph) {
  for (const auto& [u, v] : graph.Edges()) {
    if (graph.label(u) == graph.label(v)) return true;
  }
  return false;
}

}  // namespace

std::vector<SmallGraph> EnumerateConnectedLabelledGraphs(
    int edges, int num_labels, bool allow_same_label_edges) {
  assert(edges >= 1 && num_labels >= 1);
  std::vector<SmallGraph> result;
  for (int n = 2; n <= edges + 1 && n <= SmallGraph::kMaxNodes; ++n) {
    std::vector<SmallGraph> skeletons = EnumerateUnlabelled(n, edges);
    for (const SmallGraph& skeleton : skeletons) {
      // All label assignments, deduplicated by canonical form. Different
      // skeletons are never isomorphic, so dedup per skeleton is exact.
      std::unordered_set<std::string> seen;
      std::vector<graph::Label> assignment(n, 0);
      for (;;) {
        SmallGraph labelled = skeleton;
        for (int v = 0; v < n; ++v) labelled.set_label(v, assignment[v]);
        if (allow_same_label_edges || !HasSameLabelEdge(labelled)) {
          std::string key = BytesKey(CanonicalForm(labelled));
          if (seen.insert(std::move(key)).second) result.push_back(labelled);
        }
        // Next assignment (odometer).
        int v = n - 1;
        while (v >= 0 && assignment[v] == num_labels - 1) {
          assignment[v] = 0;
          --v;
        }
        if (v < 0) break;
        ++assignment[v];
      }
    }
  }
  return result;
}

CollisionStudyReport RunCollisionStudy(const CollisionStudyConfig& config) {
  CollisionStudyReport report;
  report.config = config;
  report.max_collision_free_edges = config.max_edges;
  bool collision_free_so_far = true;

  for (int e = 1; e <= config.max_edges; ++e) {
    std::vector<SmallGraph> classes = EnumerateConnectedLabelledGraphs(
        e, config.num_labels, config.allow_same_label_edges);

    // Group isomorphism classes by encoding.
    std::map<std::string, std::vector<const SmallGraph*>> by_encoding;
    for (const SmallGraph& graph : classes) {
      Encoding encoding = EncodeSmallGraph(graph, config.num_labels);
      by_encoding[BytesKey(encoding)].push_back(&graph);
    }

    CollisionStudyReport::PerEdgeCount row;
    row.edges = e;
    row.isomorphism_classes = static_cast<int64_t>(classes.size());
    row.distinct_encodings = static_cast<int64_t>(by_encoding.size());
    for (const auto& [key, members] : by_encoding) {
      if (members.size() > 1) {
        row.colliding_classes += static_cast<int64_t>(members.size());
        if (report.example_collision.empty()) {
          report.example_collision = members[0]->ToString() + "  vs  " +
                                     members[1]->ToString() +
                                     "  (same encoding, " +
                                     std::to_string(e) + " edges)";
        }
      }
    }
    report.by_edges.push_back(row);

    if (row.colliding_classes > 0 && collision_free_so_far) {
      report.max_collision_free_edges = e - 1;
      collision_free_so_far = false;
    }
  }
  return report;
}

}  // namespace hsgf::core
