#include "core/small_graph.h"

#include <bit>
#include <cassert>
#include <sstream>

namespace hsgf::core {

SmallGraph::SmallGraph(std::vector<graph::Label> labels)
    : labels_(std::move(labels)) {
  assert(num_nodes() <= kMaxNodes);
}

int SmallGraph::num_edges() const {
  int total = 0;
  for (int v = 0; v < num_nodes(); ++v) total += Degree(v);
  return total / 2;
}

void SmallGraph::AddEdge(int u, int v) {
  assert(u != v && u >= 0 && v >= 0 && u < num_nodes() && v < num_nodes());
  adjacency_[u] |= static_cast<uint16_t>(1u << v);
  adjacency_[v] |= static_cast<uint16_t>(1u << u);
}

void SmallGraph::RemoveEdge(int u, int v) {
  adjacency_[u] &= static_cast<uint16_t>(~(1u << v));
  adjacency_[v] &= static_cast<uint16_t>(~(1u << u));
}

int SmallGraph::Degree(int v) const { return std::popcount(adjacency_[v]); }

int SmallGraph::LabelDegree(int v, graph::Label l) const {
  int count = 0;
  uint16_t mask = adjacency_[v];
  while (mask != 0) {
    int u = std::countr_zero(mask);
    mask &= static_cast<uint16_t>(mask - 1);
    if (labels_[u] == l) ++count;
  }
  return count;
}

bool SmallGraph::IsConnected() const {
  if (num_nodes() == 0) return true;
  uint16_t visited = 1u;  // start at node 0
  uint16_t frontier = 1u;
  const uint16_t all = static_cast<uint16_t>((1u << num_nodes()) - 1);
  while (frontier != 0) {
    uint16_t next = 0;
    uint16_t f = frontier;
    while (f != 0) {
      int v = std::countr_zero(f);
      f &= static_cast<uint16_t>(f - 1);
      next |= adjacency_[v];
    }
    frontier = next & static_cast<uint16_t>(~visited);
    visited |= next;
    if (visited == all) return true;
  }
  return visited == all;
}

int SmallGraph::MaxLabelPlusOne() const {
  int max_label = -1;
  for (graph::Label l : labels_) max_label = std::max<int>(max_label, l);
  return max_label + 1;
}

SmallGraph SmallGraph::InducedOn(uint16_t mask) const {
  std::vector<int> keep;
  std::vector<graph::Label> labels;
  for (int v = 0; v < num_nodes(); ++v) {
    if ((mask >> v) & 1u) {
      keep.push_back(v);
      labels.push_back(labels_[v]);
    }
  }
  SmallGraph out(std::move(labels));
  for (size_t i = 0; i < keep.size(); ++i) {
    for (size_t j = i + 1; j < keep.size(); ++j) {
      if (HasEdge(keep[i], keep[j])) out.AddEdge(static_cast<int>(i),
                                                 static_cast<int>(j));
    }
  }
  return out;
}

std::vector<std::pair<int, int>> SmallGraph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < num_nodes(); ++u) {
    for (int v = u + 1; v < num_nodes(); ++v) {
      if (HasEdge(u, v)) edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::string SmallGraph::ToString(
    const std::vector<std::string>& label_names) const {
  std::ostringstream out;
  out << "labels=[";
  for (int v = 0; v < num_nodes(); ++v) {
    if (v > 0) out << ',';
    if (labels_[v] < label_names.size()) {
      out << label_names[labels_[v]];
    } else {
      out << static_cast<int>(labels_[v]);
    }
  }
  out << "] edges=[";
  bool first = true;
  for (const auto& [u, v] : Edges()) {
    if (!first) out << ',';
    first = false;
    out << '(' << u << ',' << v << ')';
  }
  out << ']';
  return out.str();
}

}  // namespace hsgf::core
