#ifndef HSGF_CORE_CENSUS_H_
#define HSGF_CORE_CENSUS_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/encoding.h"
#include "core/rolling_hash.h"
#include "graph/het_graph.h"
#include "simd/kernels.h"
#include "util/check.h"
#include "util/flat_count_map.h"
#include "util/metrics.h"
#include "util/stop_token.h"

namespace hsgf::core {

// Configuration of the rooted subgraph census (paper §3.2).
struct CensusConfig {
  // Maximum number of edges per subgraph (emax). The paper uses 6 for the
  // rank-prediction task and 5 for label prediction.
  int max_edges = 5;

  // Maximum degree constraint (dmax): nodes with degree > max_degree are
  // added to subgraphs but not expanded through ("Topological Optimization
  // Heuristic"). <= 0 means unlimited (the paper's dmax = ∞). The start node
  // is always expanded regardless (§4.3.5).
  int max_degree = 0;

  // Replace the start node's label with an artificial mask label during
  // encoding (§4.3.2) so the feature does not leak the node's own label in
  // label-prediction experiments. The mask label has index
  // graph.num_labels().
  bool mask_start_label = false;

  // Apply the paper's "Heterogeneous Optimization Heuristic": batch the
  // census-count increments of consecutive same-label new-node extensions
  // (one hash-map update per label group instead of one per neighbour).
  // Identical results either way; exposed for the ablation benchmark.
  bool group_by_label = true;

  // Minimum remaining-segment length worth an indirect vector-kernel call in
  // the grouping scan. The kernel's fixed cost — dispatch through the table
  // plus broadcasting every current member into vector lanes — only
  // amortizes over a long stretch, and on the evaluation workload runs are
  // short: 64 was measured noise-neutral against pure scalar (the vector
  // path fires only on long hub runs, where it is free), while 16 was a
  // measured ~4% regression. Below the threshold the scan stays inline and
  // branchy — same predicate, same result. Tests set 1 to force every run
  // through the kernels; a huge value forces pure scalar.
  size_t vector_scan_min = 64;

  // Pass each per-node linear hash contribution through a 64-bit finalizer
  // before summing. The paper's Eq. 5 sums the raw linear contributions,
  // which makes the subgraph hash a function of the multiset of edge label
  // pairs only — e.g. a monochrome triangle and a monochrome 4-node path
  // collide systematically. Mixing removes this failure mode at identical
  // asymptotic cost. Disable to study the unmixed variant.
  bool mix_contributions = true;

  // Memoize per-node frontier snapshots (neighbour ids + labels) for nodes
  // of degree >= kTemplateMinDegree and append frontiers by excising the
  // current subgraph's members from the snapshot, instead of re-walking the
  // adjacency with per-neighbour label loads. Pure memoization: the emitted
  // candidate sequence is bit-identical either way (differential-tested).
  // The snapshot cache persists across Run() calls on one worker — this is
  // what multi-root batching shares between the roots of a batch — and is
  // dropped by ClearFrontierCache(). Off by default: measured on a graph
  // whose label/epoch arrays are cache-resident, rebuilding small frontiers
  // beats the snapshot's second copy of the adjacency (which evicts more
  // than it saves); turn it on when label gathers actually miss (labels far
  // larger than LLC, or paged adjacency storage).
  bool frontier_templates = false;

  // Safety budget: stop enumerating after this many subgraph occurrences
  // (0 = unlimited). Hub start nodes — which the dmax heuristic exempts —
  // can induce astronomically many subgraphs (the paper reports per-node
  // outliers of 2493 s, Table 3); the budget bounds the worst case and sets
  // CensusResult::truncated when it fires.
  int64_t max_subgraphs = 0;

  // Also materialize the canonical characteristic-sequence encoding the
  // first time each hash value is seen (needed to interpret features and to
  // build cross-node vocabularies; costs O(subgraph size) per *distinct*
  // encoding only).
  bool keep_encodings = false;

  uint64_t hash_seed = RollingHash::kDefaultSeed;
};

// Census output for one start node: the heterogeneous subgraph feature
// vector in sparse form (Eq. 4 counts keyed by encoding hash).
struct CensusResult {
  util::FlatCountMap counts;
  // Hash -> canonical encoding; populated iff keep_encodings.
  std::unordered_map<uint64_t, Encoding> encodings;
  int64_t total_subgraphs = 0;
  // True iff enumeration stopped early because max_subgraphs was reached.
  bool truncated = false;
  // True iff enumeration was interrupted by a StopToken (cancellation or
  // deadline); counts cover the subgraphs visited so far.
  bool stopped = false;
};

// Instrumentation hooks for the census hot loop. All ids default to
// kInvalidMetric (recording into them is a no-op), and a null registry
// disables instrumentation entirely; pass the struct returned by Register()
// to CensusWorker to light the counters up. Counter semantics are
// documented in DESIGN.md §Observability.
struct CensusMetrics {
  util::MetricsRegistry* registry = nullptr;
  // census.nodes — Run() invocations.
  util::MetricId nodes = util::kInvalidMetric;
  // census.subgraphs_total — subgraph occurrences enumerated.
  util::MetricId subgraphs_total = util::kInvalidMetric;
  // census.subgraphs.edges_<k> — occurrences with exactly k edges
  // (index k-1), k = 1..max_edges.
  std::vector<util::MetricId> subgraphs_by_edges;
  // census.distinct_encodings — per-node distinct hashes, summed over nodes.
  util::MetricId distinct_encodings = util::kInvalidMetric;
  // census.label_group_saved — hash-map updates avoided by the label-
  // grouping heuristic (batch size minus one per batched increment, §4.3.4).
  util::MetricId label_group_saved = util::kInvalidMetric;
  // census.dmax_blocked — frontier expansions suppressed by dmax (§4.3.5).
  util::MetricId dmax_blocked = util::kInvalidMetric;
  // census.encoding_materializations — canonical encodings built
  // (once per distinct hash when keep_encodings is set).
  util::MetricId encoding_materializations = util::kInvalidMetric;
  // census.budget_truncated_nodes — nodes whose census hit max_subgraphs.
  util::MetricId budget_truncated_nodes = util::kInvalidMetric;
  // census.stopped_nodes — nodes whose census a StopToken interrupted.
  util::MetricId stopped_nodes = util::kInvalidMetric;

  // Registers every census metric (idempotent by name) and returns the
  // filled-in hook struct. `max_edges` bounds the per-edge-count counters.
  static CensusMetrics Register(util::MetricsRegistry& registry,
                                int max_edges);
};

namespace census_internal {

// SplitMix64 finalizer; the identity on 0, bijective on 64-bit values.
// simd::MixPair / MixBatch apply the same function lane-wise (simd_test
// pins the two definitions together).
inline uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace census_internal

// Enumerates all connected subgraphs (edge subsets) of `graph` that contain
// a given start node and have 1..max_edges edges, counting them by encoding
// hash. Exact and duplicate-free: each qualifying edge subset is visited
// exactly once (ordered-extension enumeration with a forbidden-set
// discipline). Thread-safe for concurrent Run() calls on distinct workers;
// one worker holds O(V) scratch state and is reused across start nodes
// (paper: memory O(tV + E) for t threads).
//
// The graph is a template parameter so the same enumeration runs over any
// storage that models the census graph concept:
//   num_nodes(), num_labels(), label(v), degree(v), neighbors(v)
// with neighbors(v) returning a range of NodeId sorted by (label, id). The
// worker consumes each neighbors(v) range immediately and never holds one
// across another neighbors() call, so graph types may invalidate the range
// on the next call (gstore::GraphView pages blocks in and out under this
// exact contract). Enumeration order — and therefore every output, including
// budget-truncation points — depends only on the neighbor sequences, not on
// the storage or on the SIMD dispatch level, which is what makes
// compressed-vs-CSR and scalar-vs-vector censuses bit-identical.
//
// Inner-loop layout (the SIMD kernel contract): candidates live in a
// structure-of-arrays arena (cand_to_ / cand_label_), segments carry their
// shared `from` endpoint, and the current subgraph's nodes are mirrored in
// the small member_nodes_ list — so when a grouping run is long enough
// (CensusConfig::vector_scan_min) the scan is one simd::LabelRunLength call
// over the segment instead of per-candidate label/epoch gathers, and the
// per-run hash terms are computed once at the run head and installed per
// child.
template <typename GraphT>
class BasicCensusWorker {
 public:
  // `metrics` is optional instrumentation (see CensusMetrics); the worker
  // keeps a copy, so the hooks may be a temporary, but the registry they
  // point into must outlive the worker.
  BasicCensusWorker(const GraphT& graph, const CensusConfig& config,
                    CensusMetrics metrics = {});

  BasicCensusWorker(const BasicCensusWorker&) = delete;
  BasicCensusWorker& operator=(const BasicCensusWorker&) = delete;

  const CensusConfig& config() const { return config_; }

  // Runs the census rooted at `start`. The result is overwritten. `stop` is
  // polled (amortized over kStopCheckInterval enumeration steps) inside the
  // enumeration loop: when it fires, the census returns the partial counts
  // collected so far with result.stopped set.
  void Run(graph::NodeId start, CensusResult& result,
           util::StopToken stop = {});

  // Drops the memoized frontier templates. The extractor calls this at
  // multi-root batch boundaries: within a batch the cache is the shared
  // sub-enumeration state, across batches it is dropped so worker memory
  // stays bounded by the densest batch, not the whole traversal. Cost is
  // O(#templates), not O(V): only the populated slots are reset.
  void ClearFrontierCache() {
    for (const FrontierTemplate& tmpl : templates_) {
      template_slot_[tmpl.node] = kNoTemplate;
    }
    templates_.clear();
    template_to_.clear();
    template_label_.clear();
    template_key_.clear();
  }

 private:
  // Half-open range of candidates in the SoA arena (cand_to_/cand_label_).
  // A recursion frame's candidate list is a sequence of segments: ranges
  // inherited from ancestor frames (shared, never copied) followed by the
  // frame's own frontier, which is the only part appended to the arena.
  // Every candidate in a segment shares the same in-subgraph endpoint —
  // frontiers are appended per joining node and inherited segments are
  // sub-ranges — so `from` lives here, not per candidate.
  struct Segment {
    size_t begin;
    size_t end;  // exclusive; segments are never empty
    graph::NodeId from;
  };

  // Position inside a frame's segment list [seg, ...): `pos` indexes the
  // arena within seg_stack_[seg]. Normalized: seg == the frame's seg_end
  // means one-past-the-last candidate (pos is then 0).
  struct Cursor {
    size_t seg;
    size_t pos;
  };

  // Undo record for one applied edge. The apply installs precomputed
  // absolute values (hash, linear and mixed contributions); the unwind
  // restores the saved ones — exact by construction, no recomputation.
  struct EdgeUndo {
    graph::NodeId to;
    graph::NodeId added;  // `to` if it newly joined the subgraph, -1 if not
    uint64_t hash_before;
    uint64_t from_linear_before;
    uint64_t from_mixed_before;
    uint64_t to_linear_before;  // cycle-closing edges only
    uint64_t to_mixed_before;   // cycle-closing edges only
  };

  // Memoized frontier snapshot of one node: its full neighbour list with
  // labels, in adjacency order (sorted by (label, id)). The entries live in
  // the flat template arenas (template_to_/template_label_/template_key_),
  // not here — appending from a template is span copies out of those
  // arenas, with no per-template pointer chase.
  struct FrontierTemplate {
    graph::NodeId node;  // owner, so ClearFrontierCache can reset its slot
    size_t begin;        // range in the template arenas
    size_t end;
  };

  // Degree threshold for building templates: below it the scalar append is
  // already a handful of loads and the snapshot would not pay for itself.
  static constexpr size_t kTemplateMinDegree = 12;
  // Cap on total cached template entries per worker (~5 MB at the cap);
  // nodes past the cap fall back to the scalar append.
  static constexpr size_t kTemplateEntryCap = size_t{1} << 20;
  static constexpr uint32_t kNoTemplate = 0xffffffffu;

  // Effective label of a node (mask applied to the start node).
  graph::Label EffectiveLabel(graph::NodeId v) const;

  bool InSubgraph(graph::NodeId v) const { return node_epoch_[v] == epoch_; }

  uint64_t MixedContribution(graph::NodeId v) const;

  // True iff the dmax heuristic forbids expanding through v.
  bool IsBlocked(graph::NodeId v) const {
    return config_.max_degree > 0 && v != start_ &&
           graph_.degree(v) > config_.max_degree;
  }

  // Appends the frontier edges contributed by newly-joined node `w` (whose
  // discovery edge came from `parent`): edges to nodes outside the subgraph
  // plus cycle-closing edges into in-subgraph *blocked* nodes, which no one
  // else offers. Honours dmax. The caller owns pushing the segment (with
  // from == w) for whatever this appends.
  void AppendFrontierOf(graph::NodeId w, graph::NodeId parent);

  // Frontier template for `w`, building (and caching) it on first sight.
  // Returns nullptr when the cache entry budget is exhausted.
  template <typename NeighborRange>
  const FrontierTemplate* TemplateFor(graph::NodeId w,
                                      const NeighborRange& neighbors);

  // Appends template arena entries [first, last) to the candidate arena.
  void AppendTemplateRange(size_t first, size_t last) {
    if (first >= last) return;
    cand_to_.insert(cand_to_.end(), template_to_.begin() + first,
                    template_to_.begin() + last);
    cand_label_.insert(cand_label_.end(), template_label_.begin() + first,
                       template_label_.begin() + last);
  }

  // Template-backed frontier append: copies the snapshot wholesale, cutting
  // out current members (except the kept cycle-closers). Emits exactly the
  // candidate sequence the scalar walk in AppendFrontierOf emits.
  void AppendFromTemplate(const FrontierTemplate& tmpl, graph::NodeId parent);

  // Advances `c` one candidate forward within the frame whose segment list
  // ends at `seg_end`, hopping to the next segment when the current one is
  // exhausted.
  void Advance(Cursor& c, size_t seg_end) const {
    if (++c.pos >= seg_stack_[c.seg].end) {
      ++c.seg;
      c.pos = c.seg < seg_end ? seg_stack_[c.seg].begin : 0;
    }
  }

  // Core recursion over the candidate segments seg_stack_[seg_begin,
  // seg_end). The frame's candidates are the concatenation of those
  // segments' arena ranges, in order — identical to the flat list the
  // old copy-based loop built, so the enumeration order (and therefore
  // budget truncation, grouping, and all output) is bit-identical.
  void Extend(size_t seg_begin, size_t seg_end, int depth,
              CensusResult& result);

  // Builds the canonical encoding of the current subgraph from the edge
  // stack (rare: once per distinct hash). Reuses member scratch buffers.
  Encoding MaterializeEncoding();

  // How many enumeration steps may pass between StopToken polls; bounds
  // cancellation latency without putting a clock read in the hot loop.
  static constexpr int kStopCheckInterval = 1024;

  const GraphT& graph_;
  CensusConfig config_;
  CensusMetrics metrics_;
  RollingHash hasher_;
  int num_effective_labels_;

  // mixed_power_[la * num_effective_labels_ + lb] == the finalized hash
  // contribution of a node that just joined with label lb via an edge from a
  // label-la node: Mix(Power(lb, la)) (raw Power when mixing is off). A
  // new node's post-join contribution depends only on the label pair, so
  // the head loop reads this table instead of running the finalizer — that
  // was one of the two Mix evaluations per head, ~5% of census time.
  std::vector<uint64_t> mixed_power_;

  graph::NodeId start_ = -1;
  uint64_t epoch_ = 0;
  uint64_t current_hash_ = 0;

  util::StopToken stop_;
  bool has_stop_ = false;
  int stop_countdown_ = kStopCheckInterval;

  // Kernel table resolved once per Run() so the dispatch level cannot flip
  // mid-census.
  const simd::KernelTable* kernels_ = nullptr;

  // Per-node scratch, epoch-stamped so Run() needs no O(V) clear.
  std::vector<uint64_t> node_epoch_;
  std::vector<uint64_t> linear_contribution_;  // Σ_i t_i b_v^i for in-subgraph nodes
  // Finalized (mixed) contribution cache: for every in-subgraph node v,
  // mixed_contribution_[v] == MixedContribution(v). Keeping it current costs
  // nothing extra — the apply path computes the mixed values anyway for the
  // run hash — and saves re-finalizing unchanged endpoints per run.
  std::vector<uint64_t> mixed_contribution_;

  // The current subgraph's nodes (including start_), push/popped in lockstep
  // with joins/leaves. Mirrors the epoch stamps: v is in the subgraph iff it
  // appears here. At most max_edges + 1 entries, so membership tests in the
  // grouping scan are broadcast compares against this list instead of
  // random-access epoch gathers.
  std::vector<graph::NodeId> member_nodes_;

  // Structure-of-arrays candidate arena, one frontier run per frame:
  // cand_to_[i] is the outside (or cycle-closing) endpoint, cand_label_[i]
  // its label. Candidates never target the start node (the start is never a
  // frontier of anything — it is unblocked, so cycle-closers into it are
  // not emitted), so cand_label_ is the plain graph label even when the
  // start label is masked.
  std::vector<graph::NodeId> cand_to_;
  std::vector<graph::Label> cand_label_;
  std::vector<Segment> seg_stack_;  // per-frame segment lists, stack-shaped
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edge_stack_;
  std::vector<EdgeUndo> undo_stack_;

  // Frontier template cache (see CensusConfig::frontier_templates).
  // template_slot_ is a direct-indexed node -> template map (kNoTemplate
  // when absent): one predictable load on the append path, where a hash-map
  // probe was measurably slower than just rebuilding small frontiers.
  // Entries for all templates share three flat arenas; template_key_ holds
  // (label << 32) | id so the member-excision search probes one contiguous
  // uint64 array instead of comparing (label, id) tuples across two.
  std::vector<uint32_t> template_slot_;
  std::vector<FrontierTemplate> templates_;
  std::vector<graph::NodeId> template_to_;
  std::vector<graph::Label> template_label_;
  std::vector<uint64_t> template_key_;
  std::vector<size_t> cut_scratch_;  // member positions to excise, reused

  // Hot-loop instrumentation is accumulated into these plain per-worker
  // counters and flushed to the registry once per Run() (flush-on-Run
  // contract, DESIGN.md §Performance). The registry's sharded counters are
  // cheap but not free: a registry call per enumeration step costs a TLS
  // lookup plus two atomic accesses, multiplied across pool threads.
  struct BatchedCounters {
    int64_t subgraphs_total = 0;
    int64_t label_group_saved = 0;
    int64_t dmax_blocked = 0;
    int64_t encoding_materializations = 0;
    std::vector<int64_t> subgraphs_by_edges;  // size config_.max_edges
  };
  BatchedCounters batch_;

  // Scratch for MaterializeEncoding, member-owned so the per-distinct-
  // encoding path does not reallocate. Sized to the largest subgraph seen;
  // only the first |subgraph| entries are live per call.
  std::vector<graph::NodeId> scratch_nodes_;
  std::vector<NodeSignature> scratch_signatures_;
};

// The census worker every existing call site uses: the in-RAM CSR graph.
using CensusWorker = BasicCensusWorker<graph::HetGraph>;

// How an extraction session obtains a per-worker accessor for a graph type.
// The default binds the shared graph itself — HetGraph is immutable and safe
// to share across census threads. Graph types with per-thread paging state
// (gstore::CompressedGraph) specialize this so each worker gets a private
// view whose neighbors() spans may be invalidated by its own next call.
template <typename GraphT>
struct CensusAccess {
  using View = GraphT;
  static const GraphT& MakeView(const GraphT& graph) { return graph; }
};

// The one one-shot convenience: builds a throwaway worker, runs the census
// for a single node, and returns the result by value. Anything that runs
// more than one census should construct a CensusWorker and reuse it (worker
// construction is O(V)).
CensusResult RunCensus(const graph::HetGraph& graph, graph::NodeId start,
                       const CensusConfig& config);

// --- BasicCensusWorker implementation ---------------------------------------

template <typename GraphT>
BasicCensusWorker<GraphT>::BasicCensusWorker(const GraphT& graph,
                                             const CensusConfig& config,
                                             CensusMetrics metrics)
    : graph_(graph),
      config_(config),
      metrics_(std::move(metrics)),
      hasher_(graph.num_labels() + (config.mask_start_label ? 1 : 0),
              config.hash_seed),
      num_effective_labels_(graph.num_labels() +
                            (config.mask_start_label ? 1 : 0)),
      node_epoch_(graph.num_nodes(), 0),
      linear_contribution_(graph.num_nodes(), 0),
      mixed_contribution_(graph.num_nodes(), 0),
      template_slot_(config.frontier_templates ? graph.num_nodes() : 0,
                     kNoTemplate) {
  HSGF_CHECK_GE(config_.max_edges, 1) << "census needs at least one edge";
  // Tolerate hooks registered for a smaller emax: missing per-edge-count
  // counters become inert instead of out-of-bounds.
  if (metrics_.registry != nullptr) {
    metrics_.subgraphs_by_edges.resize(
        static_cast<size_t>(config_.max_edges), util::kInvalidMetric);
  }
  batch_.subgraphs_by_edges.assign(static_cast<size_t>(config_.max_edges), 0);
  member_nodes_.reserve(static_cast<size_t>(config_.max_edges) + 1);
  const size_t n = static_cast<size_t>(num_effective_labels_);
  mixed_power_.resize(n * n);
  for (size_t la = 0; la < n; ++la) {
    for (size_t lb = 0; lb < n; ++lb) {
      const uint64_t p = hasher_.Power(static_cast<graph::Label>(lb),
                                       static_cast<graph::Label>(la));
      mixed_power_[la * n + lb] =
          config_.mix_contributions ? census_internal::Mix(p) : p;
    }
  }
}

template <typename GraphT>
graph::Label BasicCensusWorker<GraphT>::EffectiveLabel(graph::NodeId v) const {
  if (config_.mask_start_label && v == start_) {
    return static_cast<graph::Label>(graph_.num_labels());
  }
  return graph_.label(v);
}

template <typename GraphT>
uint64_t BasicCensusWorker<GraphT>::MixedContribution(graph::NodeId v) const {
  uint64_t c = linear_contribution_[v];
  return config_.mix_contributions ? census_internal::Mix(c) : c;
}

template <typename GraphT>
template <typename NeighborRange>
auto BasicCensusWorker<GraphT>::TemplateFor(graph::NodeId w,
                                            const NeighborRange& neighbors)
    -> const FrontierTemplate* {
  const uint32_t slot = template_slot_[w];
  if (slot != kNoTemplate) return &templates_[slot];
  const size_t degree = neighbors.size();
  const size_t begin = template_to_.size();
  if (begin + degree > kTemplateEntryCap) return nullptr;
  template_to_.insert(template_to_.end(), neighbors.begin(), neighbors.end());
  template_label_.resize(begin + degree);
  template_key_.resize(begin + degree);
  for (size_t k = 0; k < degree; ++k) {
    const graph::NodeId y = template_to_[begin + k];
    const graph::Label l = graph_.label(y);
    template_label_[begin + k] = l;
    template_key_[begin + k] =
        (static_cast<uint64_t>(l) << 32) | static_cast<uint32_t>(y);
  }
  HSGF_DCHECK(std::is_sorted(template_key_.begin() + begin,
                             template_key_.end()))
      << "adjacency of node " << w << " not sorted by (label, id)";
  template_slot_[w] = static_cast<uint32_t>(templates_.size());
  templates_.push_back({w, begin, begin + degree});
  return &templates_.back();
}

template <typename GraphT>
void BasicCensusWorker<GraphT>::AppendFromTemplate(
    const FrontierTemplate& tmpl, graph::NodeId parent) {
  // The positions to cut are exactly the in-subgraph neighbours that the
  // scalar walk would skip: every member that occurs in the snapshot, minus
  // the kept cycle-closers (blocked, not the discovery parent). The member
  // list is tiny, so this is a handful of binary searches (over the packed
  // (label, id) keys) plus bulk copies of the spans between cuts — no
  // per-neighbour work.
  const uint64_t* keys = template_key_.data();
  cut_scratch_.clear();
  for (graph::NodeId m : member_nodes_) {
    const uint64_t key = (static_cast<uint64_t>(graph_.label(m)) << 32) |
                         static_cast<uint32_t>(m);
    const uint64_t* hit =
        std::lower_bound(keys + tmpl.begin, keys + tmpl.end, key);
    if (hit == keys + tmpl.end || *hit != key) continue;
    if (IsBlocked(m) && m != parent) continue;  // kept as a cycle-closer
    // Insertion sort on arrival: at most max_edges + 1 cuts, usually 1.
    size_t pos = static_cast<size_t>(hit - keys);
    size_t at = cut_scratch_.size();
    cut_scratch_.push_back(pos);
    while (at > 0 && cut_scratch_[at - 1] > pos) {
      cut_scratch_[at] = cut_scratch_[at - 1];
      cut_scratch_[--at] = pos;
    }
  }
  size_t prev = tmpl.begin;
  for (size_t cut : cut_scratch_) {
    AppendTemplateRange(prev, cut);
    prev = cut + 1;
  }
  AppendTemplateRange(prev, tmpl.end);
}

template <typename GraphT>
void BasicCensusWorker<GraphT>::AppendFrontierOf(graph::NodeId w,
                                                 graph::NodeId parent) {
  // Frontier candidates are only collected for nodes that just joined the
  // subgraph; expanding an outside node would enumerate disconnected sets.
  HSGF_DCHECK(InSubgraph(w)) << "frontier expansion of node " << w
                             << " outside the subgraph";
  // Topological heuristic (§3.2): hubs are added but never expanded through;
  // the start node is exempt (§4.3.5).
  if (IsBlocked(w)) {
    ++batch_.dmax_blocked;
    return;
  }
  auto&& neighbors = graph_.neighbors(w);
  if (config_.frontier_templates && neighbors.size() >= kTemplateMinDegree) {
    if (const FrontierTemplate* tmpl = TemplateFor(w, neighbors)) {
      AppendFromTemplate(*tmpl, parent);
      return;
    }
  }
  // Plain push_back append: resizing to the worst case up front and trimming
  // after (to skip the per-push capacity checks) was measured ~4% slower —
  // the two extra resize passes over the arena tail cost more than the
  // predictable capacity branches.
  for (graph::NodeId y : neighbors) {
    bool keep;
    if (!InSubgraph(y)) {
      keep = true;
    } else {
      // Edges back into the subgraph are normally offered by the other
      // endpoint when *it* joins — but blocked nodes never offer their
      // edges, so cycle-closing edges into an in-subgraph hub must be
      // offered here (excluding w's own discovery edge). This keeps the
      // enumerated set independent of candidate order and duplicate-free.
      keep = IsBlocked(y) && y != parent;
    }
    if (keep) {
      cand_to_.push_back(y);
      cand_label_.push_back(graph_.label(y));
    }
  }
}

template <typename GraphT>
Encoding BasicCensusWorker<GraphT>::MaterializeEncoding() {
  // Collect the distinct nodes of the current subgraph (at most
  // max_edges + 1 of them) and recount labelled degrees from the edge stack.
  // Both scratch vectors are member-owned: only the first |subgraph| entries
  // are live, so repeated materializations allocate nothing once warm.
  scratch_nodes_.clear();
  for (const auto& [u, v] : edge_stack_) {
    scratch_nodes_.push_back(u);
    scratch_nodes_.push_back(v);
  }
  std::sort(scratch_nodes_.begin(), scratch_nodes_.end());
  scratch_nodes_.erase(
      std::unique(scratch_nodes_.begin(), scratch_nodes_.end()),
      scratch_nodes_.end());
  const size_t count = scratch_nodes_.size();

  if (scratch_signatures_.size() < count) scratch_signatures_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    scratch_signatures_[i].label = EffectiveLabel(scratch_nodes_[i]);
    scratch_signatures_[i].neighbor_counts.assign(num_effective_labels_, 0);
  }
  auto index_of = [this](graph::NodeId v) {
    return static_cast<size_t>(
        std::lower_bound(scratch_nodes_.begin(), scratch_nodes_.end(), v) -
        scratch_nodes_.begin());
  };
  for (const auto& [u, v] : edge_stack_) {
    ++scratch_signatures_[index_of(u)].neighbor_counts[EffectiveLabel(v)];
    ++scratch_signatures_[index_of(v)].neighbor_counts[EffectiveLabel(u)];
  }
  return EncodeSignatureRange(scratch_signatures_.data(), count,
                              num_effective_labels_);
}

template <typename GraphT>
void BasicCensusWorker<GraphT>::Extend(size_t seg_begin, size_t seg_end,
                                       int depth, CensusResult& result) {
  HSGF_DCHECK_LE(seg_begin, seg_end);
  HSGF_DCHECK_LE(seg_end, seg_stack_.size());
  HSGF_DCHECK_LT(depth, config_.max_edges);
  HSGF_DCHECK_EQ(edge_stack_.size(), static_cast<size_t>(depth));
  const simd::KernelTable& kernels = *kernels_;
  const size_t scan_min = config_.vector_scan_min;
  // Leaf frames have no child-apply work to hide the count-table miss
  // under, so prefetching there is pure overhead; non-leaf frames issue the
  // prefetch before the grouping scan and the apply loop covers the
  // latency. (Deferring leaf Adds into a flush buffer was tried and
  // measured a ~7% pessimization — the extra store/reload traffic cost
  // more than the overlapped probes saved on this cache-resident table.)
  const bool leaf = depth + 1 >= config_.max_edges;
  // Per-frame accumulators for the batched instrumentation counters: one
  // memory RMW per frame instead of three per head. result.total_subgraphs
  // is the exception — the budget check and child frames read it live.
  int64_t frame_subgraphs = 0;
  int64_t frame_saved = 0;
  HSGF_DCHECK_LT(static_cast<size_t>(depth), batch_.subgraphs_by_edges.size());
  auto commit_frame = [&] {
    batch_.subgraphs_total += frame_subgraphs;
    batch_.subgraphs_by_edges[depth] += frame_subgraphs;
    batch_.label_group_saved += frame_saved;
  };
  Cursor i{seg_begin, seg_begin < seg_end ? seg_stack_[seg_begin].begin : 0};
  while (i.seg < seg_end) {
    HSGF_DCHECK_LT(i.pos, seg_stack_[i.seg].end);
    if (config_.max_subgraphs > 0 &&
        result.total_subgraphs >= config_.max_subgraphs) {
      result.truncated = true;
      commit_frame();
      return;
    }
    if (has_stop_ && --stop_countdown_ <= 0) {
      stop_countdown_ = kStopCheckInterval;
      if (stop_.StopRequested()) {
        result.stopped = true;
        commit_frame();
        return;
      }
    }
    const graph::NodeId head_from = seg_stack_[i.seg].from;
    const graph::NodeId head_to = cand_to_[i.pos];
    const graph::Label head_label = cand_label_[i.pos];
    HSGF_DCHECK_EQ(head_label, EffectiveLabel(head_to));
    const bool head_is_new_node = !InSubgraph(head_to);

    // Hash of the subgraph after adding the head edge — identical for the
    // whole run (a new same-label node contributes the same label-determined
    // terms regardless of its id), so it is computed before the grouping
    // scan and the count-table slot prefetched: the table is the one
    // cache-missing access per head, and the scan is exactly the unrelated
    // work to hide that miss under.
    const graph::Label la = EffectiveLabel(head_from);
    const graph::Label lb = head_label;
    const uint64_t from_linear_after =
        linear_contribution_[head_from] + hasher_.Power(la, lb);
    const uint64_t to_linear_after =
        head_is_new_node
            ? hasher_.Power(lb, la)
            : linear_contribution_[head_to] + hasher_.Power(lb, la);
    // Finalizations inline here rather than going through an indirect
    // kernel call (simd::MixPair is the same function lane-wise; the
    // differential test would catch any drift): a new node's mixed
    // contribution is a pure label-pair function served from mixed_power_,
    // and the one remaining data-dependent Mix doesn't amortize a call.
    const uint64_t from_mixed_after = config_.mix_contributions
                                          ? census_internal::Mix(from_linear_after)
                                          : from_linear_after;
    uint64_t to_mixed_after;
    if (head_is_new_node) {
      to_mixed_after =
          mixed_power_[static_cast<size_t>(la) * num_effective_labels_ + lb];
      HSGF_DCHECK_EQ(to_mixed_after, config_.mix_contributions
                                         ? census_internal::Mix(to_linear_after)
                                         : to_linear_after);
    } else {
      to_mixed_after = config_.mix_contributions
                           ? census_internal::Mix(to_linear_after)
                           : to_linear_after;
    }
    uint64_t hash_after = current_hash_ - mixed_contribution_[head_from] +
                          from_mixed_after + to_mixed_after;
    if (!head_is_new_node) hash_after -= mixed_contribution_[head_to];
    if (!leaf) result.counts.Prefetch(hash_after);

    Cursor j = i;
    Advance(j, seg_end);
    int64_t run = 1;
    if (head_is_new_node && config_.group_by_label) {
      // Heterogeneous optimization heuristic: consecutive candidates that
      // extend the same subgraph node with a *new* neighbour of the same
      // label all produce the same encoding (and hash); batch their count.
      // Runs may span segment boundaries — adjacent segments were adjacent
      // in the flat candidate list this layout replaces — and segments are
      // from-homogeneous, so the per-candidate scan is one vector kernel
      // call per touched segment (labels against head_label, ids against
      // the member list).
      while (j.seg < seg_end && seg_stack_[j.seg].from == head_from) {
        const Segment& seg = seg_stack_[j.seg];
        const size_t avail = seg.end - j.pos;
        size_t ext;
        if (avail >= scan_min) {
          ext = kernels.label_run_length(
              cand_to_.data() + j.pos, cand_label_.data() + j.pos, avail,
              head_label, member_nodes_.data(), member_nodes_.size());
        } else {
          // Same predicate inline (the epoch stamp and the member list agree
          // by construction); short stretches don't repay the kernel call.
          ext = 0;
          while (ext < avail && cand_label_[j.pos + ext] == head_label &&
                 !InSubgraph(cand_to_[j.pos + ext])) {
            ++ext;
          }
        }
        run += static_cast<int64_t>(ext);
        j.pos += ext;
        if (j.pos < seg.end) break;
        ++j.seg;
        j.pos = j.seg < seg_end ? seg_stack_[j.seg].begin : 0;
      }
    }

    result.counts.Add(hash_after, run);
    result.total_subgraphs += run;
    frame_subgraphs += run;
    if (run > 1) frame_saved += run - 1;
    if (config_.keep_encodings && !result.encodings.contains(hash_after)) {
      edge_stack_.push_back({head_from, head_to});
      result.encodings.emplace(hash_after, MaterializeEncoding());
      edge_stack_.pop_back();
      ++batch_.encoding_materializations;
    }

    if (depth + 1 < config_.max_edges) {
      for (Cursor k = i; k.seg != j.seg || k.pos != j.pos;
           Advance(k, seg_end)) {
        if (result.truncated || result.stopped) {
          commit_frame();
          return;
        }
        const graph::NodeId to = cand_to_[k.pos];
        // Apply edge (head_from, to): every hash term was precomputed for
        // the run head and holds for each child (for a grouped run all
        // children are new nodes of the head's label; a cycle-closing head
        // is always a run of one).
        HSGF_DCHECK(InSubgraph(head_from))
            << "candidate edge " << head_from << "->" << to
            << " does not touch the subgraph";
        HSGF_DCHECK(head_is_new_node ? !InSubgraph(to) : to == head_to);
        undo_stack_.push_back({to, head_is_new_node ? to : graph::NodeId{-1},
                               current_hash_,
                               linear_contribution_[head_from],
                               mixed_contribution_[head_from],
                               head_is_new_node ? 0 : linear_contribution_[to],
                               head_is_new_node ? 0 : mixed_contribution_[to]});
        linear_contribution_[head_from] = from_linear_after;
        mixed_contribution_[head_from] = from_mixed_after;
        linear_contribution_[to] = to_linear_after;
        mixed_contribution_[to] = to_mixed_after;
        current_hash_ = hash_after;
        if (head_is_new_node) {
          node_epoch_[to] = epoch_;
          member_nodes_.push_back(to);
        }
        edge_stack_.emplace_back(head_from, to);
        // The child's candidate list: the rest of k's segment, the
        // remaining ancestor segments, then the child's own frontier —
        // all by reference except the frontier. Ancestor arena ranges
        // stay valid because descendants only append past them and always
        // resize back on unwind.
        const size_t child_seg_begin = seg_stack_.size();
        if (k.pos + 1 < seg_stack_[k.seg].end) {
          seg_stack_.push_back(
              {k.pos + 1, seg_stack_[k.seg].end, seg_stack_[k.seg].from});
        }
        for (size_t s = k.seg + 1; s < seg_end; ++s) {
          const Segment inherited = seg_stack_[s];
          seg_stack_.push_back(inherited);
        }
        const size_t child_arena_begin = cand_to_.size();
        if (head_is_new_node) AppendFrontierOf(to, head_from);
        if (cand_to_.size() > child_arena_begin) {
          seg_stack_.push_back({child_arena_begin, cand_to_.size(), to});
        }
        Extend(child_seg_begin, seg_stack_.size(), depth + 1, result);
        seg_stack_.resize(child_seg_begin);
        cand_to_.resize(child_arena_begin);
        cand_label_.resize(child_arena_begin);
        edge_stack_.pop_back();
        // Unapply: absolute restores from the undo record.
        const EdgeUndo& undo = undo_stack_.back();
        current_hash_ = undo.hash_before;
        linear_contribution_[head_from] = undo.from_linear_before;
        mixed_contribution_[head_from] = undo.from_mixed_before;
        if (undo.added != -1) {
          node_epoch_[to] = 0;  // leave the subgraph
          member_nodes_.pop_back();
        } else {
          linear_contribution_[to] = undo.to_linear_before;
          mixed_contribution_[to] = undo.to_mixed_before;
        }
        undo_stack_.pop_back();
      }
    }
    i = j;
  }
  commit_frame();
}

template <typename GraphT>
void BasicCensusWorker<GraphT>::Run(graph::NodeId start, CensusResult& result,
                                    util::StopToken stop) {
  HSGF_CHECK(start >= 0 && start < graph_.num_nodes())
      << "census start node " << start << " outside [0, "
      << graph_.num_nodes() << ")";
  result.counts.Clear();
  result.encodings.clear();
  result.total_subgraphs = 0;
  result.truncated = false;
  result.stopped = false;

  stop_ = std::move(stop);
  has_stop_ = stop_.CanStop();
  stop_countdown_ = kStopCheckInterval;
  if (has_stop_ && stop_.StopRequested()) {
    result.stopped = true;
  } else {
    start_ = start;
    ++epoch_;
    node_epoch_[start] = epoch_;
    linear_contribution_[start] = 0;
    mixed_contribution_[start] = MixedContribution(start);  // Mix(0) == 0
    current_hash_ = mixed_contribution_[start];
    kernels_ = &simd::ActiveKernels();

    member_nodes_.clear();
    member_nodes_.push_back(start);
    cand_to_.clear();
    cand_label_.clear();
    seg_stack_.clear();
    edge_stack_.clear();
    undo_stack_.clear();
    // The start node is always expanded, regardless of dmax. Frontier
    // templates are skipped here on purpose: a start snapshot would be
    // built and used exactly once per Run.
    for (graph::NodeId y : graph_.neighbors(start)) {
      cand_to_.push_back(y);
      cand_label_.push_back(graph_.label(y));
    }
    if (!cand_to_.empty()) {
      seg_stack_.push_back({0, cand_to_.size(), start});
    }
    Extend(0, seg_stack_.size(), 0, result);
    // The enumeration must unwind completely — even on truncation or stop —
    // or the epoch-stamped scratch poisons the next Run() on this worker.
    HSGF_DCHECK(edge_stack_.empty())
        << edge_stack_.size() << " edges left on the stack after unwind";
    HSGF_DCHECK(undo_stack_.empty())
        << undo_stack_.size() << " undo records left after unwind";
    HSGF_DCHECK_EQ(member_nodes_.size(), size_t{1})
        << "member list not unwound to the start node";
    HSGF_DCHECK_EQ(seg_stack_.size(), cand_to_.empty() ? size_t{0} : size_t{1})
        << "segment stack not unwound to the root frame";
    HSGF_DCHECK_EQ(linear_contribution_[start], uint64_t{0})
        << "start-node hash contribution not restored";
    HSGF_DCHECK_EQ(current_hash_, MixedContribution(start))
        << "rolling hash did not return to the empty-subgraph state";
    node_epoch_[start] = 0;
  }

  // Flush-on-Run: the hot loop accumulated into batch_; the registry sees
  // one Increment per counter per census instead of one per enumeration
  // step. Snapshots taken mid-extraction therefore lag by at most the
  // in-flight nodes' counts.
  if (metrics_.registry != nullptr) {
    util::MetricsRegistry* registry = metrics_.registry;
    registry->Increment(metrics_.nodes);
    registry->Increment(metrics_.distinct_encodings,
                        static_cast<int64_t>(result.counts.size()));
    if (batch_.subgraphs_total != 0) {
      registry->Increment(metrics_.subgraphs_total, batch_.subgraphs_total);
    }
    for (size_t k = 0; k < batch_.subgraphs_by_edges.size(); ++k) {
      if (batch_.subgraphs_by_edges[k] != 0) {
        registry->Increment(metrics_.subgraphs_by_edges[k],
                            batch_.subgraphs_by_edges[k]);
      }
    }
    if (batch_.label_group_saved != 0) {
      registry->Increment(metrics_.label_group_saved,
                          batch_.label_group_saved);
    }
    if (batch_.dmax_blocked != 0) {
      registry->Increment(metrics_.dmax_blocked, batch_.dmax_blocked);
    }
    if (batch_.encoding_materializations != 0) {
      registry->Increment(metrics_.encoding_materializations,
                          batch_.encoding_materializations);
    }
    if (result.truncated) {
      registry->Increment(metrics_.budget_truncated_nodes);
    }
    if (result.stopped) registry->Increment(metrics_.stopped_nodes);
  }
  batch_.subgraphs_total = 0;
  batch_.label_group_saved = 0;
  batch_.dmax_blocked = 0;
  batch_.encoding_materializations = 0;
  std::fill(batch_.subgraphs_by_edges.begin(),
            batch_.subgraphs_by_edges.end(), 0);
}

// The CSR instantiation every in-RAM call site links against lives in
// census.cc; this keeps its -O2 codegen (and therefore the published bench
// trajectory) in one translation unit.
extern template class BasicCensusWorker<graph::HetGraph>;

}  // namespace hsgf::core

#endif  // HSGF_CORE_CENSUS_H_
