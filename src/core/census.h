#ifndef HSGF_CORE_CENSUS_H_
#define HSGF_CORE_CENSUS_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/encoding.h"
#include "core/rolling_hash.h"
#include "graph/het_graph.h"
#include "util/check.h"
#include "util/flat_count_map.h"
#include "util/metrics.h"
#include "util/stop_token.h"

namespace hsgf::core {

// Configuration of the rooted subgraph census (paper §3.2).
struct CensusConfig {
  // Maximum number of edges per subgraph (emax). The paper uses 6 for the
  // rank-prediction task and 5 for label prediction.
  int max_edges = 5;

  // Maximum degree constraint (dmax): nodes with degree > max_degree are
  // added to subgraphs but not expanded through ("Topological Optimization
  // Heuristic"). <= 0 means unlimited (the paper's dmax = ∞). The start node
  // is always expanded regardless (§4.3.5).
  int max_degree = 0;

  // Replace the start node's label with an artificial mask label during
  // encoding (§4.3.2) so the feature does not leak the node's own label in
  // label-prediction experiments. The mask label has index
  // graph.num_labels().
  bool mask_start_label = false;

  // Apply the paper's "Heterogeneous Optimization Heuristic": batch the
  // census-count increments of consecutive same-label new-node extensions
  // (one hash-map update per label group instead of one per neighbour).
  // Identical results either way; exposed for the ablation benchmark.
  bool group_by_label = true;

  // Pass each per-node linear hash contribution through a 64-bit finalizer
  // before summing. The paper's Eq. 5 sums the raw linear contributions,
  // which makes the subgraph hash a function of the multiset of edge label
  // pairs only — e.g. a monochrome triangle and a monochrome 4-node path
  // collide systematically. Mixing removes this failure mode at identical
  // asymptotic cost. Disable to study the unmixed variant.
  bool mix_contributions = true;

  // Safety budget: stop enumerating after this many subgraph occurrences
  // (0 = unlimited). Hub start nodes — which the dmax heuristic exempts —
  // can induce astronomically many subgraphs (the paper reports per-node
  // outliers of 2493 s, Table 3); the budget bounds the worst case and sets
  // CensusResult::truncated when it fires.
  int64_t max_subgraphs = 0;

  // Also materialize the canonical characteristic-sequence encoding the
  // first time each hash value is seen (needed to interpret features and to
  // build cross-node vocabularies; costs O(subgraph size) per *distinct*
  // encoding only).
  bool keep_encodings = false;

  uint64_t hash_seed = RollingHash::kDefaultSeed;
};

// Census output for one start node: the heterogeneous subgraph feature
// vector in sparse form (Eq. 4 counts keyed by encoding hash).
struct CensusResult {
  util::FlatCountMap counts;
  // Hash -> canonical encoding; populated iff keep_encodings.
  std::unordered_map<uint64_t, Encoding> encodings;
  int64_t total_subgraphs = 0;
  // True iff enumeration stopped early because max_subgraphs was reached.
  bool truncated = false;
  // True iff enumeration was interrupted by a StopToken (cancellation or
  // deadline); counts cover the subgraphs visited so far.
  bool stopped = false;
};

// Instrumentation hooks for the census hot loop. All ids default to
// kInvalidMetric (recording into them is a no-op), and a null registry
// disables instrumentation entirely; pass the struct returned by Register()
// to CensusWorker to light the counters up. Counter semantics are
// documented in DESIGN.md §Observability.
struct CensusMetrics {
  util::MetricsRegistry* registry = nullptr;
  // census.nodes — Run() invocations.
  util::MetricId nodes = util::kInvalidMetric;
  // census.subgraphs_total — subgraph occurrences enumerated.
  util::MetricId subgraphs_total = util::kInvalidMetric;
  // census.subgraphs.edges_<k> — occurrences with exactly k edges
  // (index k-1), k = 1..max_edges.
  std::vector<util::MetricId> subgraphs_by_edges;
  // census.distinct_encodings — per-node distinct hashes, summed over nodes.
  util::MetricId distinct_encodings = util::kInvalidMetric;
  // census.label_group_saved — hash-map updates avoided by the label-
  // grouping heuristic (batch size minus one per batched increment, §4.3.4).
  util::MetricId label_group_saved = util::kInvalidMetric;
  // census.dmax_blocked — frontier expansions suppressed by dmax (§4.3.5).
  util::MetricId dmax_blocked = util::kInvalidMetric;
  // census.encoding_materializations — canonical encodings built
  // (once per distinct hash when keep_encodings is set).
  util::MetricId encoding_materializations = util::kInvalidMetric;
  // census.budget_truncated_nodes — nodes whose census hit max_subgraphs.
  util::MetricId budget_truncated_nodes = util::kInvalidMetric;
  // census.stopped_nodes — nodes whose census a StopToken interrupted.
  util::MetricId stopped_nodes = util::kInvalidMetric;

  // Registers every census metric (idempotent by name) and returns the
  // filled-in hook struct. `max_edges` bounds the per-edge-count counters.
  static CensusMetrics Register(util::MetricsRegistry& registry,
                                int max_edges);
};

namespace census_internal {

// SplitMix64 finalizer; the identity on 0, bijective on 64-bit values.
inline uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace census_internal

// Enumerates all connected subgraphs (edge subsets) of `graph` that contain
// a given start node and have 1..max_edges edges, counting them by encoding
// hash. Exact and duplicate-free: each qualifying edge subset is visited
// exactly once (ordered-extension enumeration with a forbidden-set
// discipline). Thread-safe for concurrent Run() calls on distinct workers;
// one worker holds O(V) scratch state and is reused across start nodes
// (paper: memory O(tV + E) for t threads).
//
// The graph is a template parameter so the same enumeration runs over any
// storage that models the census graph concept:
//   num_nodes(), num_labels(), label(v), degree(v), neighbors(v)
// with neighbors(v) returning a range of NodeId sorted by (label, id). The
// worker consumes each neighbors(v) range immediately and never holds one
// across another neighbors() call, so graph types may invalidate the range
// on the next call (gstore::GraphView pages blocks in and out under this
// exact contract). Enumeration order — and therefore every output, including
// budget-truncation points — depends only on the neighbor sequences, not on
// the storage, which is what makes compressed-vs-CSR censuses bit-identical.
template <typename GraphT>
class BasicCensusWorker {
 public:
  // `metrics` is optional instrumentation (see CensusMetrics); the worker
  // keeps a copy, so the hooks may be a temporary, but the registry they
  // point into must outlive the worker.
  BasicCensusWorker(const GraphT& graph, const CensusConfig& config,
                    CensusMetrics metrics = {});

  BasicCensusWorker(const BasicCensusWorker&) = delete;
  BasicCensusWorker& operator=(const BasicCensusWorker&) = delete;

  const CensusConfig& config() const { return config_; }

  // Runs the census rooted at `start`. The result is overwritten. `stop` is
  // polled (amortized over kStopCheckInterval enumeration steps) inside the
  // enumeration loop: when it fires, the census returns the partial counts
  // collected so far with result.stopped set.
  void Run(graph::NodeId start, CensusResult& result,
           util::StopToken stop = {});

 private:
  struct CandidateEdge {
    graph::NodeId from;  // endpoint that was inside the subgraph at discovery
    graph::NodeId to;    // endpoint that was outside (may have joined since)
  };

  // Half-open range of candidates in arena_. A recursion frame's candidate
  // list is a sequence of segments: ranges inherited from ancestor frames
  // (shared, never copied) followed by the frame's own frontier, which is
  // the only part appended to arena_. Replaces the tail re-copy the old hot
  // loop performed per child recursion (O(tail) memory traffic each).
  struct Segment {
    size_t begin;
    size_t end;  // exclusive; segments are never empty
  };

  // Position inside a frame's segment list [seg, ...): `pos` indexes arena_
  // within seg_stack_[seg]. Normalized: seg == the frame's seg_end means
  // one-past-the-last candidate (pos is then 0).
  struct Cursor {
    size_t seg;
    size_t pos;
  };

  // Effective label of a node (mask applied to the start node).
  graph::Label EffectiveLabel(graph::NodeId v) const;

  bool InSubgraph(graph::NodeId v) const { return node_epoch_[v] == epoch_; }

  uint64_t MixedContribution(graph::NodeId v) const;

  // Adds edge (from, to); returns `to` if it newly joined the subgraph,
  // -1 otherwise. Updates the rolling hash incrementally.
  graph::NodeId AddEdge(const CandidateEdge& edge);
  void RemoveEdge(const CandidateEdge& edge, graph::NodeId added_node);

  // True iff the dmax heuristic forbids expanding through v.
  bool IsBlocked(graph::NodeId v) const {
    return config_.max_degree > 0 && v != start_ &&
           graph_.degree(v) > config_.max_degree;
  }

  // Appends the frontier edges contributed by newly-joined node `w` (whose
  // discovery edge came from `parent`): edges to nodes outside the subgraph
  // plus cycle-closing edges into in-subgraph *blocked* nodes, which no one
  // else offers. Honours dmax.
  void AppendFrontierOf(graph::NodeId w, graph::NodeId parent);

  // Advances `c` one candidate forward within the frame whose segment list
  // ends at `seg_end`, hopping to the next segment when the current one is
  // exhausted.
  void Advance(Cursor& c, size_t seg_end) const {
    if (++c.pos >= seg_stack_[c.seg].end) {
      ++c.seg;
      c.pos = c.seg < seg_end ? seg_stack_[c.seg].begin : 0;
    }
  }

  // Core recursion over the candidate segments seg_stack_[seg_begin,
  // seg_end). The frame's candidates are the concatenation of those
  // segments' arena_ ranges, in order — identical to the flat list the
  // old copy-based loop built, so the enumeration order (and therefore
  // budget truncation, grouping, and all output) is bit-identical.
  void Extend(size_t seg_begin, size_t seg_end, int depth,
              CensusResult& result);

  // Builds the canonical encoding of the current subgraph from the edge
  // stack (rare: once per distinct hash). Reuses member scratch buffers.
  Encoding MaterializeEncoding();

  // How many enumeration steps may pass between StopToken polls; bounds
  // cancellation latency without putting a clock read in the hot loop.
  static constexpr int kStopCheckInterval = 1024;

  const GraphT& graph_;
  CensusConfig config_;
  CensusMetrics metrics_;
  RollingHash hasher_;
  int num_effective_labels_;

  graph::NodeId start_ = -1;
  uint64_t epoch_ = 0;
  uint64_t current_hash_ = 0;

  util::StopToken stop_;
  bool has_stop_ = false;
  int stop_countdown_ = kStopCheckInterval;

  // Per-node scratch, epoch-stamped so Run() needs no O(V) clear.
  std::vector<uint64_t> node_epoch_;
  std::vector<uint64_t> linear_contribution_;  // Σ_i t_i b_v^i for in-subgraph nodes

  std::vector<CandidateEdge> arena_;  // frontier candidates, one run per frame
  std::vector<Segment> seg_stack_;    // per-frame segment lists, stack-shaped
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edge_stack_;

  // Hot-loop instrumentation is accumulated into these plain per-worker
  // counters and flushed to the registry once per Run() (flush-on-Run
  // contract, DESIGN.md §Performance). The registry's sharded counters are
  // cheap but not free: a registry call per enumeration step costs a TLS
  // lookup plus two atomic accesses, multiplied across pool threads.
  struct BatchedCounters {
    int64_t subgraphs_total = 0;
    int64_t label_group_saved = 0;
    int64_t dmax_blocked = 0;
    int64_t encoding_materializations = 0;
    std::vector<int64_t> subgraphs_by_edges;  // size config_.max_edges
  };
  BatchedCounters batch_;

  // Scratch for MaterializeEncoding, member-owned so the per-distinct-
  // encoding path does not reallocate. Sized to the largest subgraph seen;
  // only the first |subgraph| entries are live per call.
  std::vector<graph::NodeId> scratch_nodes_;
  std::vector<NodeSignature> scratch_signatures_;
};

// The census worker every existing call site uses: the in-RAM CSR graph.
using CensusWorker = BasicCensusWorker<graph::HetGraph>;

// How an extraction session obtains a per-worker accessor for a graph type.
// The default binds the shared graph itself — HetGraph is immutable and safe
// to share across census threads. Graph types with per-thread paging state
// (gstore::CompressedGraph) specialize this so each worker gets a private
// view whose neighbors() spans may be invalidated by its own next call.
template <typename GraphT>
struct CensusAccess {
  using View = GraphT;
  static const GraphT& MakeView(const GraphT& graph) { return graph; }
};

// The one one-shot convenience: builds a throwaway worker, runs the census
// for a single node, and returns the result by value. Anything that runs
// more than one census should construct a CensusWorker and reuse it (worker
// construction is O(V)).
CensusResult RunCensus(const graph::HetGraph& graph, graph::NodeId start,
                       const CensusConfig& config);

// --- BasicCensusWorker implementation ---------------------------------------

template <typename GraphT>
BasicCensusWorker<GraphT>::BasicCensusWorker(const GraphT& graph,
                                             const CensusConfig& config,
                                             CensusMetrics metrics)
    : graph_(graph),
      config_(config),
      metrics_(std::move(metrics)),
      hasher_(graph.num_labels() + (config.mask_start_label ? 1 : 0),
              config.hash_seed),
      num_effective_labels_(graph.num_labels() +
                            (config.mask_start_label ? 1 : 0)),
      node_epoch_(graph.num_nodes(), 0),
      linear_contribution_(graph.num_nodes(), 0) {
  HSGF_CHECK_GE(config_.max_edges, 1) << "census needs at least one edge";
  // Tolerate hooks registered for a smaller emax: missing per-edge-count
  // counters become inert instead of out-of-bounds.
  if (metrics_.registry != nullptr) {
    metrics_.subgraphs_by_edges.resize(
        static_cast<size_t>(config_.max_edges), util::kInvalidMetric);
  }
  batch_.subgraphs_by_edges.assign(static_cast<size_t>(config_.max_edges), 0);
}

template <typename GraphT>
graph::Label BasicCensusWorker<GraphT>::EffectiveLabel(graph::NodeId v) const {
  if (config_.mask_start_label && v == start_) {
    return static_cast<graph::Label>(graph_.num_labels());
  }
  return graph_.label(v);
}

template <typename GraphT>
uint64_t BasicCensusWorker<GraphT>::MixedContribution(graph::NodeId v) const {
  uint64_t c = linear_contribution_[v];
  return config_.mix_contributions ? census_internal::Mix(c) : c;
}

template <typename GraphT>
graph::NodeId BasicCensusWorker<GraphT>::AddEdge(const CandidateEdge& edge) {
  // Every candidate extends the current subgraph: its source endpoint must
  // already be inside, or the incremental hash bookkeeping drifts silently.
  HSGF_DCHECK(InSubgraph(edge.from))
      << "candidate edge " << edge.from << "->" << edge.to
      << " does not touch the subgraph";
  const graph::Label la = EffectiveLabel(edge.from);
  const graph::Label lb = EffectiveLabel(edge.to);
  current_hash_ -= MixedContribution(edge.from);
  linear_contribution_[edge.from] += hasher_.Power(la, lb);
  current_hash_ += MixedContribution(edge.from);
  if (InSubgraph(edge.to)) {
    current_hash_ -= MixedContribution(edge.to);
    linear_contribution_[edge.to] += hasher_.Power(lb, la);
    current_hash_ += MixedContribution(edge.to);
    return -1;
  }
  node_epoch_[edge.to] = epoch_;
  linear_contribution_[edge.to] = hasher_.Power(lb, la);
  current_hash_ += MixedContribution(edge.to);
  return edge.to;
}

template <typename GraphT>
void BasicCensusWorker<GraphT>::RemoveEdge(const CandidateEdge& edge,
                                           graph::NodeId added_node) {
  const graph::Label la = EffectiveLabel(edge.from);
  const graph::Label lb = EffectiveLabel(edge.to);
  current_hash_ -= MixedContribution(edge.from);
  linear_contribution_[edge.from] -= hasher_.Power(la, lb);
  current_hash_ += MixedContribution(edge.from);
  if (added_node != -1) {
    current_hash_ -= MixedContribution(edge.to);
    node_epoch_[edge.to] = 0;  // leave the subgraph
    return;
  }
  current_hash_ -= MixedContribution(edge.to);
  linear_contribution_[edge.to] -= hasher_.Power(lb, la);
  current_hash_ += MixedContribution(edge.to);
}

template <typename GraphT>
void BasicCensusWorker<GraphT>::AppendFrontierOf(graph::NodeId w,
                                                 graph::NodeId parent) {
  // Frontier candidates are only collected for nodes that just joined the
  // subgraph; expanding an outside node would enumerate disconnected sets.
  HSGF_DCHECK(InSubgraph(w)) << "frontier expansion of node " << w
                             << " outside the subgraph";
  // Topological heuristic (§3.2): hubs are added but never expanded through;
  // the start node is exempt (§4.3.5).
  if (IsBlocked(w)) {
    ++batch_.dmax_blocked;
    return;
  }
  for (graph::NodeId y : graph_.neighbors(w)) {
    if (!InSubgraph(y)) {
      arena_.push_back({w, y});
    } else if (IsBlocked(y) && y != parent) {
      // Edges back into the subgraph are normally offered by the other
      // endpoint when *it* joins — but blocked nodes never offer their
      // edges, so cycle-closing edges into an in-subgraph hub must be
      // offered here (excluding w's own discovery edge). This keeps the
      // enumerated set independent of candidate order and duplicate-free.
      arena_.push_back({w, y});
    }
  }
}

template <typename GraphT>
Encoding BasicCensusWorker<GraphT>::MaterializeEncoding() {
  // Collect the distinct nodes of the current subgraph (at most
  // max_edges + 1 of them) and recount labelled degrees from the edge stack.
  // Both scratch vectors are member-owned: only the first |subgraph| entries
  // are live, so repeated materializations allocate nothing once warm.
  scratch_nodes_.clear();
  for (const auto& [u, v] : edge_stack_) {
    scratch_nodes_.push_back(u);
    scratch_nodes_.push_back(v);
  }
  std::sort(scratch_nodes_.begin(), scratch_nodes_.end());
  scratch_nodes_.erase(
      std::unique(scratch_nodes_.begin(), scratch_nodes_.end()),
      scratch_nodes_.end());
  const size_t count = scratch_nodes_.size();

  if (scratch_signatures_.size() < count) scratch_signatures_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    scratch_signatures_[i].label = EffectiveLabel(scratch_nodes_[i]);
    scratch_signatures_[i].neighbor_counts.assign(num_effective_labels_, 0);
  }
  auto index_of = [this](graph::NodeId v) {
    return static_cast<size_t>(
        std::lower_bound(scratch_nodes_.begin(), scratch_nodes_.end(), v) -
        scratch_nodes_.begin());
  };
  for (const auto& [u, v] : edge_stack_) {
    ++scratch_signatures_[index_of(u)].neighbor_counts[EffectiveLabel(v)];
    ++scratch_signatures_[index_of(v)].neighbor_counts[EffectiveLabel(u)];
  }
  return EncodeSignatureRange(scratch_signatures_.data(), count,
                              num_effective_labels_);
}

template <typename GraphT>
void BasicCensusWorker<GraphT>::Extend(size_t seg_begin, size_t seg_end,
                                       int depth, CensusResult& result) {
  HSGF_DCHECK_LE(seg_begin, seg_end);
  HSGF_DCHECK_LE(seg_end, seg_stack_.size());
  HSGF_DCHECK_LT(depth, config_.max_edges);
  HSGF_DCHECK_EQ(edge_stack_.size(), static_cast<size_t>(depth));
  Cursor i{seg_begin, seg_begin < seg_end ? seg_stack_[seg_begin].begin : 0};
  while (i.seg < seg_end) {
    HSGF_DCHECK_LT(i.pos, seg_stack_[i.seg].end);
    if (config_.max_subgraphs > 0 &&
        result.total_subgraphs >= config_.max_subgraphs) {
      result.truncated = true;
      return;
    }
    if (has_stop_ && --stop_countdown_ <= 0) {
      stop_countdown_ = kStopCheckInterval;
      if (stop_.StopRequested()) {
        result.stopped = true;
        return;
      }
    }
    const CandidateEdge head = arena_[i.pos];
    const bool head_is_new_node = !InSubgraph(head.to);
    Cursor j = i;
    Advance(j, seg_end);
    int64_t run = 1;
    if (head_is_new_node && config_.group_by_label) {
      // Heterogeneous optimization heuristic: consecutive candidates that
      // extend the same subgraph node with a *new* neighbour of the same
      // label all produce the same encoding (and hash); batch their count.
      // Runs may span segment boundaries — adjacent segments were adjacent
      // in the flat candidate list this layout replaces.
      const graph::Label head_label = EffectiveLabel(head.to);
      while (j.seg < seg_end) {
        const CandidateEdge& cand = arena_[j.pos];
        if (cand.from != head.from || InSubgraph(cand.to) ||
            EffectiveLabel(cand.to) != head_label) {
          break;
        }
        ++run;
        Advance(j, seg_end);
      }
    }

    // Hash of the subgraph after adding `head` (identical for the whole
    // run): both endpoints' contributions change.
    const graph::Label la = EffectiveLabel(head.from);
    const graph::Label lb = EffectiveLabel(head.to);
    uint64_t hash_after = current_hash_;
    hash_after -= MixedContribution(head.from);
    {
      uint64_t c_from = linear_contribution_[head.from] + hasher_.Power(la, lb);
      hash_after +=
          config_.mix_contributions ? census_internal::Mix(c_from) : c_from;
    }
    if (head_is_new_node) {
      uint64_t c_to = hasher_.Power(lb, la);
      hash_after +=
          config_.mix_contributions ? census_internal::Mix(c_to) : c_to;
    } else {
      hash_after -= MixedContribution(head.to);
      uint64_t c_to = linear_contribution_[head.to] + hasher_.Power(lb, la);
      hash_after +=
          config_.mix_contributions ? census_internal::Mix(c_to) : c_to;
    }

    result.counts.Add(hash_after, run);
    result.total_subgraphs += run;
    HSGF_DCHECK_LT(static_cast<size_t>(depth),
                   batch_.subgraphs_by_edges.size());
    batch_.subgraphs_total += run;
    batch_.subgraphs_by_edges[depth] += run;
    if (run > 1) batch_.label_group_saved += run - 1;
    if (config_.keep_encodings && !result.encodings.contains(hash_after)) {
      edge_stack_.push_back({head.from, head.to});
      result.encodings.emplace(hash_after, MaterializeEncoding());
      edge_stack_.pop_back();
      ++batch_.encoding_materializations;
    }

    if (depth + 1 < config_.max_edges) {
      for (Cursor k = i; k.seg != j.seg || k.pos != j.pos;
           Advance(k, seg_end)) {
        if (result.truncated || result.stopped) return;
        const CandidateEdge edge = arena_[k.pos];
        graph::NodeId added = AddEdge(edge);
        edge_stack_.emplace_back(edge.from, edge.to);
        // The child's candidate list: the rest of k's segment, the
        // remaining ancestor segments, then the child's own frontier —
        // all by reference except the frontier. Ancestor arena_ ranges
        // stay valid because descendants only append past them and always
        // resize back on unwind.
        const size_t child_seg_begin = seg_stack_.size();
        if (k.pos + 1 < seg_stack_[k.seg].end) {
          seg_stack_.push_back({k.pos + 1, seg_stack_[k.seg].end});
        }
        for (size_t s = k.seg + 1; s < seg_end; ++s) {
          const Segment inherited = seg_stack_[s];
          seg_stack_.push_back(inherited);
        }
        const size_t child_arena_begin = arena_.size();
        if (added != -1) AppendFrontierOf(added, edge.from);
        if (arena_.size() > child_arena_begin) {
          seg_stack_.push_back({child_arena_begin, arena_.size()});
        }
        Extend(child_seg_begin, seg_stack_.size(), depth + 1, result);
        seg_stack_.resize(child_seg_begin);
        arena_.resize(child_arena_begin);
        edge_stack_.pop_back();
        RemoveEdge(edge, added);
      }
    }
    i = j;
  }
}

template <typename GraphT>
void BasicCensusWorker<GraphT>::Run(graph::NodeId start, CensusResult& result,
                                    util::StopToken stop) {
  HSGF_CHECK(start >= 0 && start < graph_.num_nodes())
      << "census start node " << start << " outside [0, "
      << graph_.num_nodes() << ")";
  result.counts.Clear();
  result.encodings.clear();
  result.total_subgraphs = 0;
  result.truncated = false;
  result.stopped = false;

  stop_ = std::move(stop);
  has_stop_ = stop_.CanStop();
  stop_countdown_ = kStopCheckInterval;
  if (has_stop_ && stop_.StopRequested()) {
    result.stopped = true;
  } else {
    start_ = start;
    ++epoch_;
    node_epoch_[start] = epoch_;
    linear_contribution_[start] = 0;
    current_hash_ = MixedContribution(start);  // Mix(0) == 0; kept for clarity

    arena_.clear();
    seg_stack_.clear();
    edge_stack_.clear();
    // The start node is always expanded, regardless of dmax.
    for (graph::NodeId y : graph_.neighbors(start)) {
      arena_.push_back({start, y});
    }
    if (!arena_.empty()) seg_stack_.push_back({0, arena_.size()});
    Extend(0, seg_stack_.size(), 0, result);
    // The enumeration must unwind completely — even on truncation or stop —
    // or the epoch-stamped scratch poisons the next Run() on this worker.
    HSGF_DCHECK(edge_stack_.empty())
        << edge_stack_.size() << " edges left on the stack after unwind";
    HSGF_DCHECK_EQ(seg_stack_.size(), arena_.empty() ? size_t{0} : size_t{1})
        << "segment stack not unwound to the root frame";
    HSGF_DCHECK_EQ(linear_contribution_[start], uint64_t{0})
        << "start-node hash contribution not restored";
    HSGF_DCHECK_EQ(current_hash_, MixedContribution(start))
        << "rolling hash did not return to the empty-subgraph state";
    node_epoch_[start] = 0;
  }

  // Flush-on-Run: the hot loop accumulated into batch_; the registry sees
  // one Increment per counter per census instead of one per enumeration
  // step. Snapshots taken mid-extraction therefore lag by at most the
  // in-flight nodes' counts.
  if (metrics_.registry != nullptr) {
    util::MetricsRegistry* registry = metrics_.registry;
    registry->Increment(metrics_.nodes);
    registry->Increment(metrics_.distinct_encodings,
                        static_cast<int64_t>(result.counts.size()));
    if (batch_.subgraphs_total != 0) {
      registry->Increment(metrics_.subgraphs_total, batch_.subgraphs_total);
    }
    for (size_t k = 0; k < batch_.subgraphs_by_edges.size(); ++k) {
      if (batch_.subgraphs_by_edges[k] != 0) {
        registry->Increment(metrics_.subgraphs_by_edges[k],
                            batch_.subgraphs_by_edges[k]);
      }
    }
    if (batch_.label_group_saved != 0) {
      registry->Increment(metrics_.label_group_saved,
                          batch_.label_group_saved);
    }
    if (batch_.dmax_blocked != 0) {
      registry->Increment(metrics_.dmax_blocked, batch_.dmax_blocked);
    }
    if (batch_.encoding_materializations != 0) {
      registry->Increment(metrics_.encoding_materializations,
                          batch_.encoding_materializations);
    }
    if (result.truncated) {
      registry->Increment(metrics_.budget_truncated_nodes);
    }
    if (result.stopped) registry->Increment(metrics_.stopped_nodes);
  }
  batch_.subgraphs_total = 0;
  batch_.label_group_saved = 0;
  batch_.dmax_blocked = 0;
  batch_.encoding_materializations = 0;
  std::fill(batch_.subgraphs_by_edges.begin(),
            batch_.subgraphs_by_edges.end(), 0);
}

// The CSR instantiation every in-RAM call site links against lives in
// census.cc; this keeps its -O2 codegen (and therefore the published bench
// trajectory) in one translation unit.
extern template class BasicCensusWorker<graph::HetGraph>;

}  // namespace hsgf::core

#endif  // HSGF_CORE_CENSUS_H_
