#ifndef HSGF_CORE_CENSUS_H_
#define HSGF_CORE_CENSUS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/encoding.h"
#include "core/rolling_hash.h"
#include "graph/het_graph.h"
#include "util/flat_count_map.h"
#include "util/metrics.h"
#include "util/stop_token.h"

namespace hsgf::core {

// Configuration of the rooted subgraph census (paper §3.2).
struct CensusConfig {
  // Maximum number of edges per subgraph (emax). The paper uses 6 for the
  // rank-prediction task and 5 for label prediction.
  int max_edges = 5;

  // Maximum degree constraint (dmax): nodes with degree > max_degree are
  // added to subgraphs but not expanded through ("Topological Optimization
  // Heuristic"). <= 0 means unlimited (the paper's dmax = ∞). The start node
  // is always expanded regardless (§4.3.5).
  int max_degree = 0;

  // Replace the start node's label with an artificial mask label during
  // encoding (§4.3.2) so the feature does not leak the node's own label in
  // label-prediction experiments. The mask label has index
  // graph.num_labels().
  bool mask_start_label = false;

  // Apply the paper's "Heterogeneous Optimization Heuristic": batch the
  // census-count increments of consecutive same-label new-node extensions
  // (one hash-map update per label group instead of one per neighbour).
  // Identical results either way; exposed for the ablation benchmark.
  bool group_by_label = true;

  // Pass each per-node linear hash contribution through a 64-bit finalizer
  // before summing. The paper's Eq. 5 sums the raw linear contributions,
  // which makes the subgraph hash a function of the multiset of edge label
  // pairs only — e.g. a monochrome triangle and a monochrome 4-node path
  // collide systematically. Mixing removes this failure mode at identical
  // asymptotic cost. Disable to study the unmixed variant.
  bool mix_contributions = true;

  // Safety budget: stop enumerating after this many subgraph occurrences
  // (0 = unlimited). Hub start nodes — which the dmax heuristic exempts —
  // can induce astronomically many subgraphs (the paper reports per-node
  // outliers of 2493 s, Table 3); the budget bounds the worst case and sets
  // CensusResult::truncated when it fires.
  int64_t max_subgraphs = 0;

  // Also materialize the canonical characteristic-sequence encoding the
  // first time each hash value is seen (needed to interpret features and to
  // build cross-node vocabularies; costs O(subgraph size) per *distinct*
  // encoding only).
  bool keep_encodings = false;

  uint64_t hash_seed = RollingHash::kDefaultSeed;
};

// Census output for one start node: the heterogeneous subgraph feature
// vector in sparse form (Eq. 4 counts keyed by encoding hash).
struct CensusResult {
  util::FlatCountMap counts;
  // Hash -> canonical encoding; populated iff keep_encodings.
  std::unordered_map<uint64_t, Encoding> encodings;
  int64_t total_subgraphs = 0;
  // True iff enumeration stopped early because max_subgraphs was reached.
  bool truncated = false;
  // True iff enumeration was interrupted by a StopToken (cancellation or
  // deadline); counts cover the subgraphs visited so far.
  bool stopped = false;
};

// Instrumentation hooks for the census hot loop. All ids default to
// kInvalidMetric (recording into them is a no-op), and a null registry
// disables instrumentation entirely; pass the struct returned by Register()
// to CensusWorker to light the counters up. Counter semantics are
// documented in DESIGN.md §Observability.
struct CensusMetrics {
  util::MetricsRegistry* registry = nullptr;
  // census.nodes — Run() invocations.
  util::MetricId nodes = util::kInvalidMetric;
  // census.subgraphs_total — subgraph occurrences enumerated.
  util::MetricId subgraphs_total = util::kInvalidMetric;
  // census.subgraphs.edges_<k> — occurrences with exactly k edges
  // (index k-1), k = 1..max_edges.
  std::vector<util::MetricId> subgraphs_by_edges;
  // census.distinct_encodings — per-node distinct hashes, summed over nodes.
  util::MetricId distinct_encodings = util::kInvalidMetric;
  // census.label_group_saved — hash-map updates avoided by the label-
  // grouping heuristic (batch size minus one per batched increment, §4.3.4).
  util::MetricId label_group_saved = util::kInvalidMetric;
  // census.dmax_blocked — frontier expansions suppressed by dmax (§4.3.5).
  util::MetricId dmax_blocked = util::kInvalidMetric;
  // census.encoding_materializations — canonical encodings built
  // (once per distinct hash when keep_encodings is set).
  util::MetricId encoding_materializations = util::kInvalidMetric;
  // census.budget_truncated_nodes — nodes whose census hit max_subgraphs.
  util::MetricId budget_truncated_nodes = util::kInvalidMetric;
  // census.stopped_nodes — nodes whose census a StopToken interrupted.
  util::MetricId stopped_nodes = util::kInvalidMetric;

  // Registers every census metric (idempotent by name) and returns the
  // filled-in hook struct. `max_edges` bounds the per-edge-count counters.
  static CensusMetrics Register(util::MetricsRegistry& registry,
                                int max_edges);
};

// Enumerates all connected subgraphs (edge subsets) of `graph` that contain
// a given start node and have 1..max_edges edges, counting them by encoding
// hash. Exact and duplicate-free: each qualifying edge subset is visited
// exactly once (ordered-extension enumeration with a forbidden-set
// discipline). Thread-safe for concurrent Run() calls on distinct workers;
// one CensusWorker holds O(V) scratch state and is reused across start
// nodes (paper: memory O(tV + E) for t threads).
class CensusWorker {
 public:
  // `metrics` is optional instrumentation (see CensusMetrics); the worker
  // keeps a copy, so the hooks may be a temporary, but the registry they
  // point into must outlive the worker.
  CensusWorker(const graph::HetGraph& graph, const CensusConfig& config,
               CensusMetrics metrics = {});

  CensusWorker(const CensusWorker&) = delete;
  CensusWorker& operator=(const CensusWorker&) = delete;

  const CensusConfig& config() const { return config_; }

  // Runs the census rooted at `start`. The result is overwritten. `stop` is
  // polled (amortized over kStopCheckInterval enumeration steps) inside the
  // enumeration loop: when it fires, the census returns the partial counts
  // collected so far with result.stopped set.
  void Run(graph::NodeId start, CensusResult& result,
           util::StopToken stop = {});

 private:
  struct CandidateEdge {
    graph::NodeId from;  // endpoint that was inside the subgraph at discovery
    graph::NodeId to;    // endpoint that was outside (may have joined since)
  };

  // Half-open range of candidates in arena_. A recursion frame's candidate
  // list is a sequence of segments: ranges inherited from ancestor frames
  // (shared, never copied) followed by the frame's own frontier, which is
  // the only part appended to arena_. Replaces the tail re-copy the old hot
  // loop performed per child recursion (O(tail) memory traffic each).
  struct Segment {
    size_t begin;
    size_t end;  // exclusive; segments are never empty
  };

  // Position inside a frame's segment list [seg, ...): `pos` indexes arena_
  // within seg_stack_[seg]. Normalized: seg == the frame's seg_end means
  // one-past-the-last candidate (pos is then 0).
  struct Cursor {
    size_t seg;
    size_t pos;
  };

  // Effective label of a node (mask applied to the start node).
  graph::Label EffectiveLabel(graph::NodeId v) const;

  bool InSubgraph(graph::NodeId v) const { return node_epoch_[v] == epoch_; }

  uint64_t MixedContribution(graph::NodeId v) const;

  // Adds edge (from, to); returns `to` if it newly joined the subgraph,
  // -1 otherwise. Updates the rolling hash incrementally.
  graph::NodeId AddEdge(const CandidateEdge& edge);
  void RemoveEdge(const CandidateEdge& edge, graph::NodeId added_node);

  // True iff the dmax heuristic forbids expanding through v.
  bool IsBlocked(graph::NodeId v) const {
    return config_.max_degree > 0 && v != start_ &&
           graph_.degree(v) > config_.max_degree;
  }

  // Appends the frontier edges contributed by newly-joined node `w` (whose
  // discovery edge came from `parent`): edges to nodes outside the subgraph
  // plus cycle-closing edges into in-subgraph *blocked* nodes, which no one
  // else offers. Honours dmax.
  void AppendFrontierOf(graph::NodeId w, graph::NodeId parent);

  // Advances `c` one candidate forward within the frame whose segment list
  // ends at `seg_end`, hopping to the next segment when the current one is
  // exhausted.
  void Advance(Cursor& c, size_t seg_end) const {
    if (++c.pos >= seg_stack_[c.seg].end) {
      ++c.seg;
      c.pos = c.seg < seg_end ? seg_stack_[c.seg].begin : 0;
    }
  }

  // Core recursion over the candidate segments seg_stack_[seg_begin,
  // seg_end). The frame's candidates are the concatenation of those
  // segments' arena_ ranges, in order — identical to the flat list the
  // old copy-based loop built, so the enumeration order (and therefore
  // budget truncation, grouping, and all output) is bit-identical.
  void Extend(size_t seg_begin, size_t seg_end, int depth,
              CensusResult& result);

  // Builds the canonical encoding of the current subgraph from the edge
  // stack (rare: once per distinct hash). Reuses member scratch buffers.
  Encoding MaterializeEncoding();

  // How many enumeration steps may pass between StopToken polls; bounds
  // cancellation latency without putting a clock read in the hot loop.
  static constexpr int kStopCheckInterval = 1024;

  const graph::HetGraph& graph_;
  CensusConfig config_;
  CensusMetrics metrics_;
  RollingHash hasher_;
  int num_effective_labels_;

  graph::NodeId start_ = -1;
  uint64_t epoch_ = 0;
  uint64_t current_hash_ = 0;

  util::StopToken stop_;
  bool has_stop_ = false;
  int stop_countdown_ = kStopCheckInterval;

  // Per-node scratch, epoch-stamped so Run() needs no O(V) clear.
  std::vector<uint64_t> node_epoch_;
  std::vector<uint64_t> linear_contribution_;  // Σ_i t_i b_v^i for in-subgraph nodes

  std::vector<CandidateEdge> arena_;  // frontier candidates, one run per frame
  std::vector<Segment> seg_stack_;    // per-frame segment lists, stack-shaped
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edge_stack_;

  // Hot-loop instrumentation is accumulated into these plain per-worker
  // counters and flushed to the registry once per Run() (flush-on-Run
  // contract, DESIGN.md §Performance). The registry's sharded counters are
  // cheap but not free: a registry call per enumeration step costs a TLS
  // lookup plus two atomic accesses, multiplied across pool threads.
  struct BatchedCounters {
    int64_t subgraphs_total = 0;
    int64_t label_group_saved = 0;
    int64_t dmax_blocked = 0;
    int64_t encoding_materializations = 0;
    std::vector<int64_t> subgraphs_by_edges;  // size config_.max_edges
  };
  BatchedCounters batch_;

  // Scratch for MaterializeEncoding, member-owned so the per-distinct-
  // encoding path does not reallocate. Sized to the largest subgraph seen;
  // only the first |subgraph| entries are live per call.
  std::vector<graph::NodeId> scratch_nodes_;
  std::vector<NodeSignature> scratch_signatures_;
};

// The one one-shot convenience: builds a throwaway worker, runs the census
// for a single node, and returns the result by value. Anything that runs
// more than one census should construct a CensusWorker and reuse it (worker
// construction is O(V)).
CensusResult RunCensus(const graph::HetGraph& graph, graph::NodeId start,
                       const CensusConfig& config);

}  // namespace hsgf::core

#endif  // HSGF_CORE_CENSUS_H_
