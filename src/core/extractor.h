#ifndef HSGF_CORE_EXTRACTOR_H_
#define HSGF_CORE_EXTRACTOR_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/census.h"
#include "core/feature_matrix.h"
#include "graph/degree_stats.h"
#include "graph/het_graph.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/stop_token.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hsgf::core {

// High-level entry point: run the rooted subgraph census for a set of nodes
// (in parallel, per paper §3.2 "trivially parallelizable by starting node")
// and assemble the heterogeneous subgraph feature matrix.
struct ExtractorConfig {
  CensusConfig census;

  // Convenience: when in (0, 100), census.max_degree is derived as the
  // degree at this percentile of the graph's degree distribution (the
  // Table 2 parameterization). 0 keeps census.max_degree as given; 100
  // disables the constraint.
  double dmax_percentile = 0.0;

  // Worker threads for the per-node fan-out (0 = hardware concurrency).
  unsigned num_threads = 1;

  // Multi-root batching: group roots that share a high-degree neighbour and
  // run each group consecutively on one census worker, keeping the worker's
  // frontier snapshot cache alive within the group (the shared hub's
  // frontier — the common prefix of those censuses — is then built once per
  // batch instead of once per root; with paged storage the hub's adjacency
  // blocks also stay pinned across the batch). Pure scheduling: results are
  // keyed by caller index, so the feature matrix is bit-identical with
  // batching on or off, at any thread count (differential-tested).
  bool batch_roots = true;

  FeatureBuildOptions features;
};

// The dmax that an extractor built from (graph, config) will apply:
// census.max_degree, overridden by the dmax_percentile convenience when it
// is set (0 = unlimited). Public so the CLI and benches can report or reuse
// the resolved value without re-deriving the percentile themselves. Works
// for any graph type modelling num_nodes()/degree(v).
template <typename GraphT>
int ResolveDmaxFor(const GraphT& graph, const ExtractorConfig& config) {
  if (config.dmax_percentile > 0.0 && config.dmax_percentile < 100.0) {
    return graph::DegreePercentileOf(
        graph.num_nodes(), [&graph](graph::NodeId v) { return graph.degree(v); },
        config.dmax_percentile);
  }
  if (config.dmax_percentile >= 100.0) return 0;  // constraint disabled
  return config.census.max_degree;
}

inline int ResolveDmax(const graph::HetGraph& graph,
                       const ExtractorConfig& config) {
  return ResolveDmaxFor(graph, config);
}

// Progress report delivered as node censuses complete. Reports are
// throttled: at most one per Extractor::kProgressInterval completed nodes,
// plus a final report carrying the exact totals when the last node
// finishes (runs interrupted by a StopToken may end without one).
struct ExtractionProgress {
  size_t nodes_done = 0;
  size_t nodes_total = 0;
  int64_t subgraphs_so_far = 0;
};
using ProgressFn = std::function<void(const ExtractionProgress&)>;

struct ExtractionResult {
  FeatureSet features;
  // The dmax actually applied (0 = unlimited).
  int effective_dmax = 0;
  // Total subgraph occurrences enumerated over all nodes.
  int64_t total_subgraphs = 0;
  // Nodes whose census hit CensusConfig::max_subgraphs and was truncated.
  int64_t truncated_nodes = 0;
  // Nodes whose census ran (fully or partially); the remaining rows of the
  // feature matrix are zero. Equals the node count unless stopped early.
  size_t nodes_processed = 0;
  // True iff a StopToken (cancellation or deadline) interrupted the run;
  // `features` then covers only the censuses finished in time.
  bool stopped_early = false;
  // Snapshot of the extractor's metrics registry taken at the end of Run():
  // census counters, per-node time histogram, and per-stage spans
  // (cumulative across Run() calls on the same Extractor). See DESIGN.md
  // §Observability for the metric names.
  util::MetricsSnapshot metrics;
};

// Extraction session: binds (graph, config) once, resolves dmax up front,
// and owns the worker thread pool and metrics registry across Run() calls.
// Prefer this over the one-shot ExtractFeatures() wrapper when extracting
// repeatedly from the same graph — the pool threads and the resolved dmax
// are reused, and the metrics registry accumulates over the session.
//
// Run() is deterministic: the feature matrix is identical for any thread
// count. The extractor itself is not re-entrant (one Run() at a time), but
// its censuses execute on the internal pool.
//
// The graph storage is a template parameter (see BasicCensusWorker for the
// concept); each pool thread obtains its own accessor through
// CensusAccess<GraphT>, so paged storages hand every worker a private view.
template <typename GraphT>
class BasicExtractor {
 public:
  // Completed-node stride between progress reports (plus the final one).
  // Keeps the shared progress mutex out of the per-node path: under heavy
  // thread counts a per-node lock acquisition serializes the workers.
  static constexpr size_t kProgressInterval = 16;

  // Roots batch together only around a shared neighbour of at least this
  // degree — below it the shared work (one frontier snapshot) is too small
  // to be worth steering the schedule. Matches the census worker's own
  // template threshold so every batch hub is actually snapshot-eligible.
  static constexpr int kBatchHubMinDegree = 12;
  // Upper bound on roots per batch: caps how much work the LPT scheduler
  // must place as one indivisible unit, so batching cannot recreate the
  // straggler problem it shares a cache to avoid.
  static constexpr size_t kBatchCap = 16;

  BasicExtractor(const GraphT& graph, const ExtractorConfig& config);
  ~BasicExtractor() = default;

  BasicExtractor(const BasicExtractor&) = delete;
  BasicExtractor& operator=(const BasicExtractor&) = delete;

  const GraphT& graph() const { return graph_; }
  const ExtractorConfig& config() const { return config_; }
  // The dmax applied to every census of this session (0 = unlimited).
  int effective_dmax() const { return census_config_.max_degree; }

  // Worker threads Run() fans out over. This is the single place where
  // ExtractorConfig::num_threads == 0 resolves (to the hardware concurrency,
  // inside ThreadPool); 1 means the census runs inline on the caller.
  unsigned num_worker_threads() const {
    return pool_ != nullptr ? pool_->num_threads() : 1;
  }

  // Live registry backing this session's instrumentation; snapshot it at
  // any time (including concurrently with Run()) for in-flight metrics.
  util::MetricsRegistry& metrics() { return metrics_; }

  // Runs the census rooted at every node in `nodes` and builds the feature
  // set. `nodes` may contain any subset of the graph's nodes (the paper
  // samples 250 per label for label prediction and all institutions for
  // rank prediction).
  //
  // `stop` is polled inside the census enumeration loops: when it fires,
  // in-flight censuses return their partial counts, queued nodes are
  // skipped, and the result carries stopped_early. `progress`, when set, is
  // invoked at most once per kProgressInterval completed censuses plus once
  // at the end (serialized, but possibly from worker threads).
  ExtractionResult Run(const std::vector<graph::NodeId>& nodes);
  ExtractionResult Run(const std::vector<graph::NodeId>& nodes,
                       util::StopToken stop, ProgressFn progress = nullptr);

  // Censuses a single node inline with the session's resolved configuration
  // and instrumentation — the serving layer's cold-miss path. Produces
  // exactly the counts a batch Run() would produce for this node (per-node
  // censuses are independent). Builds a fresh O(V) worker per call; safe to
  // call concurrently with other RunCensus() calls (the registry is
  // thread-safe), but not concurrently with Run().
  CensusResult RunCensus(graph::NodeId node, util::StopToken stop = {});

 private:
  using Access = CensusAccess<GraphT>;
  using Worker = BasicCensusWorker<typename Access::View>;

  // Groups indices into `nodes` into the batches Run() schedules: roots
  // keyed by their highest-degree neighbour of degree >= kBatchHubMinDegree
  // (ties to the smallest id), in caller order, split at kBatchCap; roots
  // with no such neighbour run solo. Deterministic in the input alone.
  std::vector<std::vector<size_t>> PlanBatches(
      const std::vector<graph::NodeId>& nodes);

  const GraphT& graph_;
  ExtractorConfig config_;
  CensusConfig census_config_;  // config_.census with dmax resolved
  util::MetricsRegistry metrics_;
  CensusMetrics census_metrics_;
  util::MetricId span_resolve_dmax_ = util::kInvalidMetric;
  util::MetricId span_census_ = util::kInvalidMetric;
  util::MetricId hist_node_micros_ = util::kInvalidMetric;
  util::MetricId gauge_effective_dmax_ = util::kInvalidMetric;
  util::MetricId gauge_nodes_total_ = util::kInvalidMetric;
  util::MetricId gauge_root_batches_ = util::kInvalidMetric;
  util::MetricId gauge_features_selected_ = util::kInvalidMetric;
  std::unique_ptr<util::ThreadPool> pool_;  // null when single-threaded
};

// The extraction session every existing call site uses: in-RAM CSR.
using Extractor = BasicExtractor<graph::HetGraph>;

// One-shot convenience kept for existing call sites: builds a throwaway
// Extractor session and runs it once.
ExtractionResult ExtractFeatures(const graph::HetGraph& graph,
                                 const std::vector<graph::NodeId>& nodes,
                                 const ExtractorConfig& config);

// --- BasicExtractor implementation ------------------------------------------

template <typename GraphT>
BasicExtractor<GraphT>::BasicExtractor(const GraphT& graph,
                                       const ExtractorConfig& config)
    : graph_(graph), config_(config), census_config_(config.census) {
  span_resolve_dmax_ = metrics_.Span("extract.resolve_dmax");
  span_census_ = metrics_.Span("extract.census");
  hist_node_micros_ = metrics_.Histogram("census.node_micros");
  gauge_effective_dmax_ = metrics_.Gauge("extract.effective_dmax");
  gauge_nodes_total_ = metrics_.Gauge("extract.nodes_total");
  gauge_root_batches_ = metrics_.Gauge("extract.root_batches");
  gauge_features_selected_ = metrics_.Gauge("extract.features_selected");
  census_metrics_ = CensusMetrics::Register(metrics_, census_config_.max_edges);

  {
    util::ScopedSpan span(metrics_, span_resolve_dmax_);
    census_config_.max_degree = ResolveDmaxFor(graph, config);
  }
  metrics_.SetGauge(gauge_effective_dmax_, census_config_.max_degree);

  // The pool (and its threads) lives for the whole session; num_threads == 0
  // resolves to the hardware concurrency inside ThreadPool.
  if (config_.num_threads != 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
}

template <typename GraphT>
ExtractionResult BasicExtractor<GraphT>::Run(
    const std::vector<graph::NodeId>& nodes) {
  return Run(nodes, util::StopToken(), nullptr);
}

template <typename GraphT>
ExtractionResult BasicExtractor<GraphT>::Run(
    const std::vector<graph::NodeId>& nodes, util::StopToken stop,
    ProgressFn progress) {
  ExtractionResult result;
  result.effective_dmax = census_config_.max_degree;
  metrics_.SetGauge(gauge_nodes_total_, static_cast<double>(nodes.size()));

  std::vector<CensusResult> censuses(nodes.size());
  std::atomic<size_t> nodes_done{0};
  std::atomic<int64_t> subgraphs_so_far{0};
  std::atomic<bool> any_stopped{false};
  // hsgf-lint: allow(mutex-guard) function-local; GUARDED_BY is members-only
  util::Mutex progress_mutex;

  auto process = [&](Worker& worker, size_t i) {
    util::Stopwatch watch;
    worker.Run(nodes[i], censuses[i], stop);
    metrics_.Observe(hist_node_micros_, watch.ElapsedMicros());
    if (censuses[i].stopped) any_stopped.store(true, std::memory_order_relaxed);
    // Plain statistic: relaxed is enough on its own, the acq_rel RMW on
    // nodes_done below publishes it to whichever thread reports next.
    subgraphs_so_far.fetch_add(censuses[i].total_subgraphs,
                               std::memory_order_relaxed);
    const size_t done = nodes_done.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Throttle: a progress report (and its mutex) at most once per
    // kProgressInterval completions, plus the final one — not per node.
    // The acq_rel increment chain guarantees the report that observes
    // done == total also observes every worker's subgraph contribution.
    if (progress &&
        (done % kProgressInterval == 0 || done == nodes.size())) {
      // Re-read under the lock rather than passing the values computed
      // above: reports stay monotone even when workers reach the lock out
      // of order, and the last report carries the final totals.
      util::MutexLock lock(progress_mutex);
      progress({nodes_done.load(std::memory_order_acquire), nodes.size(),
                subgraphs_so_far.load(std::memory_order_relaxed)});
    }
  };

  // Multi-root batching (scheduling only): each batch runs back-to-back on
  // one worker with the worker's frontier snapshot cache kept alive inside
  // the batch and dropped at its boundary, so roots around a shared hub
  // walk the hub's frontier once. With batching off every root is its own
  // batch and the loops below degenerate to the per-root schedule.
  std::vector<std::vector<size_t>> batches;
  if (config_.batch_roots && nodes.size() > 1) {
    batches = PlanBatches(nodes);
  } else {
    batches.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) batches.push_back({i});
  }
  metrics_.SetGauge(gauge_root_batches_, static_cast<double>(batches.size()));

  {
    util::ScopedSpan span(metrics_, span_census_);
    if (pool_ == nullptr || nodes.size() <= 1) {
      auto&& view = Access::MakeView(graph_);
      Worker worker(view, census_config_, census_metrics_);
      for (const std::vector<size_t>& batch : batches) {
        if (stop.StopRequested()) break;
        worker.ClearFrontierCache();
        for (size_t i : batch) {
          if (stop.StopRequested()) break;
          process(worker, i);
        }
      }
    } else {
      // Skew-aware dispatch (longest-processing-time-first): census cost is
      // wildly skewed by start-node degree (paper Table 3 reports per-node
      // outliers of 2493 s on hubs). Dequeuing in caller order can land a
      // hub last and serialize the tail of the run on one thread; starting
      // the heaviest batches first bounds the straggler to roughly the
      // heaviest single batch (kBatchCap bounds how heavy batching can make
      // one). Results still land in caller slot order — censuses[i] is
      // keyed by the original index — so the feature matrix is identical
      // for any schedule.
      std::vector<int64_t> weight(batches.size(), 0);
      for (size_t b = 0; b < batches.size(); ++b) {
        for (size_t i : batches[b]) weight[b] += graph_.degree(nodes[i]);
      }
      std::vector<size_t> order(batches.size());
      std::iota(order.begin(), order.end(), size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return weight[a] > weight[b];
      });
      // Work-queue ticket: the RMW hands each batch to exactly one thread;
      // no other memory is published through it, hence relaxed.
      std::atomic<size_t> cursor{0};
      const unsigned worker_count = pool_->num_threads();
      for (unsigned t = 0; t < worker_count; ++t) {
        pool_->Submit([&] {
          // One O(V) census worker per thread; the graph is shared
          // read-only (paper: O(tV + E) memory). Paged storages hand each
          // thread a private view through CensusAccess.
          auto&& view = Access::MakeView(graph_);
          Worker worker(view, census_config_, census_metrics_);
          for (;;) {
            if (stop.StopRequested()) return;
            const size_t b = cursor.fetch_add(1, std::memory_order_relaxed);
            if (b >= order.size()) return;
            worker.ClearFrontierCache();
            for (size_t i : batches[order[b]]) {
              if (stop.StopRequested()) return;
              process(worker, i);
            }
          }
        });
      }
      pool_->Wait();
    }
  }

  result.nodes_processed = nodes_done.load();
  result.stopped_early = any_stopped.load(std::memory_order_relaxed) ||
                         result.nodes_processed < nodes.size();
  for (const CensusResult& census : censuses) {
    result.total_subgraphs += census.total_subgraphs;
    if (census.truncated) ++result.truncated_nodes;
  }
  result.features = BuildFeatureSet(censuses, config_.features, &metrics_);
  metrics_.SetGauge(gauge_features_selected_,
                    static_cast<double>(result.features.matrix.cols()));
  result.metrics = metrics_.Snapshot();
  return result;
}

template <typename GraphT>
std::vector<std::vector<size_t>> BasicExtractor<GraphT>::PlanBatches(
    const std::vector<graph::NodeId>& nodes) {
  std::vector<std::vector<size_t>> batches;
  batches.reserve(nodes.size());
  auto&& view = Access::MakeView(graph_);
  // hub -> index of its still-open batch in `batches`.
  std::unordered_map<graph::NodeId, size_t> open;
  for (size_t i = 0; i < nodes.size(); ++i) {
    // Batch key: the root's highest-degree neighbour at or above the hub
    // threshold, ties to the smallest id. degree() is O(1) index metadata on
    // every census storage, so probing it inside the neighbour walk never
    // invalidates the neighbors() range.
    graph::NodeId hub = -1;
    int hub_degree = 0;
    for (graph::NodeId w : view.neighbors(nodes[i])) {
      const int d = view.degree(w);
      if (d < kBatchHubMinDegree) continue;
      if (hub < 0 || d > hub_degree || (d == hub_degree && w < hub)) {
        hub = w;
        hub_degree = d;
      }
    }
    if (hub < 0) {
      batches.push_back({i});
      continue;
    }
    auto [it, inserted] = open.try_emplace(hub, batches.size());
    if (inserted) batches.emplace_back();
    std::vector<size_t>& batch = batches[it->second];
    batch.push_back(i);
    if (batch.size() >= kBatchCap) open.erase(it);
  }
  return batches;
}

template <typename GraphT>
CensusResult BasicExtractor<GraphT>::RunCensus(graph::NodeId node,
                                               util::StopToken stop) {
  auto&& view = Access::MakeView(graph_);
  Worker worker(view, census_config_, census_metrics_);
  CensusResult result;
  util::Stopwatch watch;
  worker.Run(node, result, stop);
  metrics_.Observe(hist_node_micros_, watch.ElapsedMicros());
  return result;
}

// The CSR instantiation lives in extractor.cc (see census.h for why).
extern template class BasicExtractor<graph::HetGraph>;

}  // namespace hsgf::core

#endif  // HSGF_CORE_EXTRACTOR_H_
