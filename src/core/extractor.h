#ifndef HSGF_CORE_EXTRACTOR_H_
#define HSGF_CORE_EXTRACTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/census.h"
#include "core/feature_matrix.h"
#include "graph/het_graph.h"
#include "util/metrics.h"
#include "util/stop_token.h"
#include "util/thread_pool.h"

namespace hsgf::core {

// High-level entry point: run the rooted subgraph census for a set of nodes
// (in parallel, per paper §3.2 "trivially parallelizable by starting node")
// and assemble the heterogeneous subgraph feature matrix.
struct ExtractorConfig {
  CensusConfig census;

  // Convenience: when in (0, 100), census.max_degree is derived as the
  // degree at this percentile of the graph's degree distribution (the
  // Table 2 parameterization). 0 keeps census.max_degree as given; 100
  // disables the constraint.
  double dmax_percentile = 0.0;

  // Worker threads for the per-node fan-out (0 = hardware concurrency).
  unsigned num_threads = 1;

  FeatureBuildOptions features;
};

// The dmax that an Extractor built from (graph, config) will apply:
// census.max_degree, overridden by the dmax_percentile convenience when it
// is set (0 = unlimited). Public so the CLI and benches can report or reuse
// the resolved value without re-deriving the percentile themselves.
int ResolveDmax(const graph::HetGraph& graph, const ExtractorConfig& config);

// Progress report delivered as node censuses complete. Reports are
// throttled: at most one per Extractor::kProgressInterval completed nodes,
// plus a final report carrying the exact totals when the last node
// finishes (runs interrupted by a StopToken may end without one).
struct ExtractionProgress {
  size_t nodes_done = 0;
  size_t nodes_total = 0;
  int64_t subgraphs_so_far = 0;
};
using ProgressFn = std::function<void(const ExtractionProgress&)>;

struct ExtractionResult {
  FeatureSet features;
  // The dmax actually applied (0 = unlimited).
  int effective_dmax = 0;
  // Total subgraph occurrences enumerated over all nodes.
  int64_t total_subgraphs = 0;
  // Nodes whose census hit CensusConfig::max_subgraphs and was truncated.
  int64_t truncated_nodes = 0;
  // Nodes whose census ran (fully or partially); the remaining rows of the
  // feature matrix are zero. Equals the node count unless stopped early.
  size_t nodes_processed = 0;
  // True iff a StopToken (cancellation or deadline) interrupted the run;
  // `features` then covers only the censuses finished in time.
  bool stopped_early = false;
  // Snapshot of the extractor's metrics registry taken at the end of Run():
  // census counters, per-node time histogram, and per-stage spans
  // (cumulative across Run() calls on the same Extractor). See DESIGN.md
  // §Observability for the metric names.
  util::MetricsSnapshot metrics;
};

// Extraction session: binds (graph, config) once, resolves dmax up front,
// and owns the worker thread pool and metrics registry across Run() calls.
// Prefer this over the one-shot ExtractFeatures() wrapper when extracting
// repeatedly from the same graph — the pool threads and the resolved dmax
// are reused, and the metrics registry accumulates over the session.
//
// Run() is deterministic: the feature matrix is identical for any thread
// count. The Extractor itself is not re-entrant (one Run() at a time), but
// its censuses execute on the internal pool.
class Extractor {
 public:
  // Completed-node stride between progress reports (plus the final one).
  // Keeps the shared progress mutex out of the per-node path: under heavy
  // thread counts a per-node lock acquisition serializes the workers.
  static constexpr size_t kProgressInterval = 16;

  Extractor(const graph::HetGraph& graph, const ExtractorConfig& config);
  ~Extractor();

  Extractor(const Extractor&) = delete;
  Extractor& operator=(const Extractor&) = delete;

  const graph::HetGraph& graph() const { return graph_; }
  const ExtractorConfig& config() const { return config_; }
  // The dmax applied to every census of this session (0 = unlimited).
  int effective_dmax() const { return census_config_.max_degree; }

  // Worker threads Run() fans out over. This is the single place where
  // ExtractorConfig::num_threads == 0 resolves (to the hardware concurrency,
  // inside ThreadPool); 1 means the census runs inline on the caller.
  unsigned num_worker_threads() const {
    return pool_ != nullptr ? pool_->num_threads() : 1;
  }

  // Live registry backing this session's instrumentation; snapshot it at
  // any time (including concurrently with Run()) for in-flight metrics.
  util::MetricsRegistry& metrics() { return metrics_; }

  // Runs the census rooted at every node in `nodes` and builds the feature
  // set. `nodes` may contain any subset of the graph's nodes (the paper
  // samples 250 per label for label prediction and all institutions for
  // rank prediction).
  //
  // `stop` is polled inside the census enumeration loops: when it fires,
  // in-flight censuses return their partial counts, queued nodes are
  // skipped, and the result carries stopped_early. `progress`, when set, is
  // invoked at most once per kProgressInterval completed censuses plus once
  // at the end (serialized, but possibly from worker threads).
  ExtractionResult Run(const std::vector<graph::NodeId>& nodes);
  ExtractionResult Run(const std::vector<graph::NodeId>& nodes,
                       util::StopToken stop, ProgressFn progress = nullptr);

  // Censuses a single node inline with the session's resolved configuration
  // and instrumentation — the serving layer's cold-miss path. Produces
  // exactly the counts a batch Run() would produce for this node (per-node
  // censuses are independent). Builds a fresh O(V) worker per call; safe to
  // call concurrently with other RunCensus() calls (the registry is
  // thread-safe), but not concurrently with Run().
  CensusResult RunCensus(graph::NodeId node, util::StopToken stop = {});

 private:
  const graph::HetGraph& graph_;
  ExtractorConfig config_;
  CensusConfig census_config_;  // config_.census with dmax resolved
  util::MetricsRegistry metrics_;
  CensusMetrics census_metrics_;
  util::MetricId span_resolve_dmax_ = util::kInvalidMetric;
  util::MetricId span_census_ = util::kInvalidMetric;
  util::MetricId hist_node_micros_ = util::kInvalidMetric;
  util::MetricId gauge_effective_dmax_ = util::kInvalidMetric;
  util::MetricId gauge_nodes_total_ = util::kInvalidMetric;
  util::MetricId gauge_features_selected_ = util::kInvalidMetric;
  std::unique_ptr<util::ThreadPool> pool_;  // null when single-threaded
};

// One-shot convenience kept for existing call sites: builds a throwaway
// Extractor session and runs it once.
ExtractionResult ExtractFeatures(const graph::HetGraph& graph,
                                 const std::vector<graph::NodeId>& nodes,
                                 const ExtractorConfig& config);

}  // namespace hsgf::core

#endif  // HSGF_CORE_EXTRACTOR_H_
