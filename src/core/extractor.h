#ifndef HSGF_CORE_EXTRACTOR_H_
#define HSGF_CORE_EXTRACTOR_H_

#include <vector>

#include "core/census.h"
#include "core/feature_matrix.h"
#include "graph/het_graph.h"

namespace hsgf::core {

// High-level entry point: run the rooted subgraph census for a set of nodes
// (in parallel, per paper §3.2 "trivially parallelizable by starting node")
// and assemble the heterogeneous subgraph feature matrix.
struct ExtractorConfig {
  CensusConfig census;

  // Convenience: when in (0, 100), census.max_degree is derived as the
  // degree at this percentile of the graph's degree distribution (the
  // Table 2 parameterization). 0 keeps census.max_degree as given; 100
  // disables the constraint.
  double dmax_percentile = 0.0;

  // Worker threads for the per-node fan-out (0 = hardware concurrency).
  unsigned num_threads = 1;

  FeatureBuildOptions features;

  // Record per-node census wall-clock time (Table 3).
  bool record_timings = false;
};

struct ExtractionResult {
  FeatureSet features;
  // Census wall-clock seconds per node (input order); empty unless
  // record_timings.
  std::vector<double> seconds_per_node;
  // The dmax actually applied (0 = unlimited).
  int effective_dmax = 0;
  // Total subgraph occurrences enumerated over all nodes.
  int64_t total_subgraphs = 0;
};

// Runs the census rooted at every node in `nodes` and builds the feature
// set. `nodes` may contain any subset of the graph's nodes (the paper
// samples 250 per label for label prediction and all institutions for rank
// prediction).
ExtractionResult ExtractFeatures(const graph::HetGraph& graph,
                                 const std::vector<graph::NodeId>& nodes,
                                 const ExtractorConfig& config);

}  // namespace hsgf::core

#endif  // HSGF_CORE_EXTRACTOR_H_
