#include "io/crc32.h"

#include <array>

namespace hsgf::io {
namespace {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

void Crc32::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = state_;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  }
  state_ = crc;
}

uint32_t Crc32Of(const void* data, size_t size) {
  Crc32 crc;
  crc.Update(data, size);
  return crc.Value();
}

}  // namespace hsgf::io
