#ifndef HSGF_IO_CRC32_H_
#define HSGF_IO_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hsgf::io {

// Incremental CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG
// variant). The snapshot format checksums the whole file with the stored
// checksum field zeroed, so corruption anywhere — header or payload — is
// detected by a single pass.
class Crc32 {
 public:
  Crc32() = default;

  void Update(const void* data, size_t size);

  // The digest of everything fed so far. Update() may continue afterwards.
  uint32_t Value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

// One-shot convenience.
uint32_t Crc32Of(const void* data, size_t size);

}  // namespace hsgf::io

#endif  // HSGF_IO_CRC32_H_
