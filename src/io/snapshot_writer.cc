#include <algorithm>
#include <cstring>
#include <fstream>
#include <numeric>

#include "io/crc32.h"
#include "io/snapshot.h"

namespace hsgf::io {

namespace {

using snapshot_internal::Header;
using snapshot_internal::SectionRef;

void SetError(SnapshotError* error, SnapshotErrorCode code,
              std::string message) {
  if (error != nullptr) {
    error->code = code;
    error->message = std::move(message);
  }
}

constexpr uint64_t Pad8(uint64_t size) { return (size + 7) & ~uint64_t{7}; }

// Appends one section's bytes to the stream and the running checksum,
// 8-byte-padding the tail so every section starts aligned.
class SectionStreamer {
 public:
  SectionStreamer(std::ofstream& out, Crc32& crc) : out_(out), crc_(crc) {}

  void Write(const void* data, size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    crc_.Update(data, size);
    written_ += size;
  }

  void FinishSection() {
    static const char kZeros[8] = {};
    const uint64_t padded = Pad8(written_);
    if (padded > written_) Write(kZeros, padded - written_);
    written_ = 0;
  }

 private:
  std::ofstream& out_;
  Crc32& crc_;
  uint64_t written_ = 0;
};

}  // namespace

const char* SnapshotErrorCodeName(SnapshotErrorCode code) {
  switch (code) {
    case SnapshotErrorCode::kOk: return "ok";
    case SnapshotErrorCode::kIoError: return "io_error";
    case SnapshotErrorCode::kBadMagic: return "bad_magic";
    case SnapshotErrorCode::kBadVersion: return "bad_version";
    case SnapshotErrorCode::kTruncated: return "truncated";
    case SnapshotErrorCode::kCrcMismatch: return "crc_mismatch";
    case SnapshotErrorCode::kEmpty: return "empty";
    case SnapshotErrorCode::kMalformed: return "malformed";
  }
  return "unknown";
}

bool SaveSnapshot(const std::string& path, const SnapshotContents& contents,
                  SnapshotError* error) {
  const core::FeatureSet* features = contents.features;
  if (features == nullptr) {
    SetError(error, SnapshotErrorCode::kMalformed,
             "SnapshotContents::features is null");
    return false;
  }
  const size_t num_rows = contents.node_ids.size();
  const size_t num_cols = features->feature_hashes.size();
  if (num_rows == 0 || num_cols == 0) {
    SetError(error, SnapshotErrorCode::kEmpty,
             "refusing to save an empty snapshot (" +
                 std::to_string(num_rows) + " rows, " +
                 std::to_string(num_cols) + " feature columns)");
    return false;
  }
  if (static_cast<size_t>(features->matrix.rows()) != num_rows ||
      contents.node_labels.size() != num_rows) {
    SetError(error, SnapshotErrorCode::kMalformed,
             "node_ids / node_labels / matrix row counts disagree");
    return false;
  }
  if (static_cast<size_t>(features->matrix.cols()) != num_cols) {
    SetError(error, SnapshotErrorCode::kMalformed,
             "feature_hashes / matrix column counts disagree");
    return false;
  }
  if (contents.label_names.empty() ||
      contents.label_names.size() > graph::kMaxLabels) {
    SetError(error, SnapshotErrorCode::kMalformed, "bad label alphabet size");
    return false;
  }
  for (graph::Label label : contents.node_labels) {
    if (static_cast<size_t>(label) >= contents.label_names.size()) {
      SetError(error, SnapshotErrorCode::kMalformed,
               "node label " + std::to_string(label) +
                   " outside the label alphabet");
      return false;
    }
  }

  // Row lookup index: row indices ordered by ascending node id. Duplicate
  // node ids would make serving-time lookup ambiguous — reject them.
  std::vector<uint32_t> sorted_rows(num_rows);
  std::iota(sorted_rows.begin(), sorted_rows.end(), 0u);
  std::sort(sorted_rows.begin(), sorted_rows.end(),
            [&](uint32_t a, uint32_t b) {
              return contents.node_ids[a] < contents.node_ids[b];
            });
  for (size_t i = 1; i < num_rows; ++i) {
    if (contents.node_ids[sorted_rows[i - 1]] ==
        contents.node_ids[sorted_rows[i]]) {
      SetError(error, SnapshotErrorCode::kMalformed,
               "duplicate node id " +
                   std::to_string(contents.node_ids[sorted_rows[i]]));
      return false;
    }
  }

  // CSR encode the matrix and the per-column totals of the stored values.
  std::vector<uint64_t> row_offsets(num_rows + 1, 0);
  std::vector<uint32_t> col_indices;
  std::vector<double> values;
  std::vector<double> column_totals(num_cols, 0.0);
  for (size_t r = 0; r < num_rows; ++r) {
    const double* row = features->matrix.row(static_cast<int>(r));
    for (size_t c = 0; c < num_cols; ++c) {
      if (row[c] == 0.0) continue;
      col_indices.push_back(static_cast<uint32_t>(c));
      values.push_back(row[c]);
      column_totals[c] += row[c];
    }
    row_offsets[r + 1] = col_indices.size();
  }

  // Encoding blob: per-column canonical encodings, empty when unknown.
  std::vector<uint64_t> encoding_offsets(num_cols + 1, 0);
  std::vector<uint8_t> encoding_bytes;
  for (size_t c = 0; c < num_cols; ++c) {
    auto it = features->encodings.find(features->feature_hashes[c]);
    if (it != features->encodings.end()) {
      encoding_bytes.insert(encoding_bytes.end(), it->second.begin(),
                            it->second.end());
    }
    encoding_offsets[c + 1] = encoding_bytes.size();
  }

  // Label-name section: u32 count, then u32 length + bytes per name.
  std::vector<uint8_t> label_blob;
  auto put_u32 = [&label_blob](uint32_t v) {
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    label_blob.insert(label_blob.end(), p, p + sizeof(v));
  };
  put_u32(static_cast<uint32_t>(contents.label_names.size()));
  for (const std::string& name : contents.label_names) {
    put_u32(static_cast<uint32_t>(name.size()));
    label_blob.insert(label_blob.end(), name.begin(), name.end());
  }

  Header header{};
  std::memcpy(header.magic, snapshot_internal::kMagic, sizeof(header.magic));
  header.version = snapshot_internal::kFormatVersion;
  header.header_size = sizeof(Header);
  header.crc32 = 0;  // patched after streaming
  header.flags = (contents.log1p_transform ? snapshot_internal::kFlagLog1p : 0u) |
                 (contents.mask_start_label
                      ? snapshot_internal::kFlagMaskStartLabel
                      : 0u);
  header.hash_seed = contents.hash_seed;
  header.max_edges = contents.max_edges;
  header.effective_dmax = contents.effective_dmax;
  header.num_labels = static_cast<uint32_t>(contents.label_names.size());
  header.num_rows = static_cast<uint32_t>(num_rows);
  header.num_cols = static_cast<uint32_t>(num_cols);
  header.nnz = col_indices.size();

  struct SectionData {
    const void* data;
    uint64_t size;
  };
  const SectionData sections[snapshot_internal::kNumSections] = {
      {label_blob.data(), label_blob.size()},
      {contents.node_ids.data(), num_rows * sizeof(int32_t)},
      {contents.node_labels.data(), num_rows * sizeof(uint8_t)},
      {sorted_rows.data(), num_rows * sizeof(uint32_t)},
      {features->feature_hashes.data(), num_cols * sizeof(uint64_t)},
      {column_totals.data(), num_cols * sizeof(double)},
      {encoding_offsets.data(), (num_cols + 1) * sizeof(uint64_t)},
      {encoding_bytes.data(), encoding_bytes.size()},
      {row_offsets.data(), (num_rows + 1) * sizeof(uint64_t)},
      {col_indices.data(), col_indices.size() * sizeof(uint32_t)},
      {values.data(), values.size() * sizeof(double)},
  };

  uint64_t offset = sizeof(Header);
  for (int s = 0; s < snapshot_internal::kNumSections; ++s) {
    header.sections[s] = SectionRef{offset, sections[s].size};
    offset += Pad8(sections[s].size);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    SetError(error, SnapshotErrorCode::kIoError, "cannot open " + path);
    return false;
  }

  // Stream header + sections while accumulating the file CRC (header's own
  // checksum field is zero during the pass), then patch the checksum.
  Crc32 crc;
  crc.Update(&header, sizeof(header));
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  SectionStreamer streamer(out, crc);
  for (const SectionData& section : sections) {
    if (section.size > 0) streamer.Write(section.data, section.size);
    streamer.FinishSection();
  }

  const uint32_t checksum = crc.Value();
  out.seekp(offsetof(Header, crc32));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    SetError(error, SnapshotErrorCode::kIoError, "write failed for " + path);
    return false;
  }
  SetError(error, SnapshotErrorCode::kOk, "");
  return true;
}

}  // namespace hsgf::io
