#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/crc32.h"
#include "io/snapshot.h"
#include "util/check.h"

namespace hsgf::io {

namespace {

using snapshot_internal::Header;
using snapshot_internal::SectionRef;

void SetError(SnapshotError* error, SnapshotErrorCode code,
              std::string message) {
  if (error != nullptr) {
    error->code = code;
    error->message = std::move(message);
  }
}

constexpr uint64_t Pad8(uint64_t size) { return (size + 7) & ~uint64_t{7}; }

// Typed zero-copy view of a section; fails when the byte size does not match
// the expected element count exactly.
template <typename T>
bool SectionSpan(const uint8_t* base, const SectionRef& ref, size_t count,
                 std::span<const T>* out) {
  if (ref.size != count * sizeof(T)) return false;
  *out = {reinterpret_cast<const T*>(base + ref.offset), count};
  return true;
}

}  // namespace

Snapshot::Mapping::~Mapping() {
  if (data != nullptr) {
    munmap(const_cast<uint8_t*>(data), size);
  }
}

core::Encoding Snapshot::EncodingOf(uint32_t col) const {
  HSGF_CHECK_LT(col, num_cols()) << "encoding column out of range";
  const uint64_t begin = encoding_offsets_[col];
  const uint64_t end = encoding_offsets_[col + 1];
  // OpenSnapshot validated monotonicity ending at the blob size; anything
  // else here means the validated mapping changed under us.
  HSGF_DCHECK_LE(begin, end);
  HSGF_DCHECK_LE(end, encoding_bytes_.size());
  return core::Encoding(encoding_bytes_.begin() + begin,
                        encoding_bytes_.begin() + end);
}

int64_t Snapshot::FindRow(graph::NodeId node) const {
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(sorted_rows_.size()) - 1;
  while (lo <= hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    const graph::NodeId at = node_ids_[sorted_rows_[mid]];
    if (at == node) return sorted_rows_[mid];
    if (at < node) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

Snapshot::SparseRow Snapshot::Row(uint32_t row) const {
  HSGF_CHECK_LT(row, num_rows()) << "feature row out of range";
  const uint64_t begin = row_offsets_[row];
  const uint64_t end = row_offsets_[row + 1];
  HSGF_DCHECK_LE(begin, end);
  HSGF_DCHECK_LE(end, nnz());
  return {col_indices_.subspan(begin, end - begin),
          values_.subspan(begin, end - begin)};
}

std::vector<double> Snapshot::DenseRow(uint32_t row) const {
  std::vector<double> dense(num_cols(), 0.0);
  const SparseRow sparse = Row(row);
  for (size_t i = 0; i < sparse.cols.size(); ++i) {
    HSGF_DCHECK_LT(sparse.cols[i], num_cols());
    dense[sparse.cols[i]] = sparse.values[i];
  }
  return dense;
}

std::optional<Snapshot> OpenSnapshot(const std::string& path,
                                     SnapshotError* error) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, SnapshotErrorCode::kIoError,
             "cannot open " + path + ": " + std::strerror(errno));
    return std::nullopt;
  }
  struct stat st{};
  if (fstat(fd, &st) != 0) {
    SetError(error, SnapshotErrorCode::kIoError,
             "fstat failed for " + path + ": " + std::strerror(errno));
    close(fd);
    return std::nullopt;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    SetError(error, SnapshotErrorCode::kTruncated, path + " is empty");
    close(fd);
    return std::nullopt;
  }
  void* mapped = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  close(fd);  // the mapping keeps the file alive
  if (mapped == MAP_FAILED) {
    SetError(error, SnapshotErrorCode::kIoError,
             "mmap failed for " + path + ": " + std::strerror(errno));
    return std::nullopt;
  }

  auto mapping = std::make_shared<const Snapshot::Mapping>(
      static_cast<const uint8_t*>(mapped), size);
  const uint8_t* base = mapping->data;

  // Identity first: a non-snapshot file should report bad magic, not
  // truncation, whenever enough bytes exist to tell.
  if (size >= sizeof(snapshot_internal::kMagic) &&
      std::memcmp(base, snapshot_internal::kMagic,
                  sizeof(snapshot_internal::kMagic)) != 0) {
    SetError(error, SnapshotErrorCode::kBadMagic,
             path + " is not an HSGF snapshot");
    return std::nullopt;
  }
  if (size < sizeof(Header)) {
    SetError(error, SnapshotErrorCode::kTruncated,
             path + " is shorter than the snapshot header");
    return std::nullopt;
  }
  const auto* header = reinterpret_cast<const Header*>(base);
  if (header->version != snapshot_internal::kFormatVersion) {
    SetError(error, SnapshotErrorCode::kBadVersion,
             "snapshot format v" + std::to_string(header->version) +
                 ", this build reads v" +
                 std::to_string(snapshot_internal::kFormatVersion));
    return std::nullopt;
  }
  if (header->header_size != sizeof(Header)) {
    SetError(error, SnapshotErrorCode::kMalformed,
             "unexpected header size " + std::to_string(header->header_size));
    return std::nullopt;
  }

  // Section table sanity before touching any section: every section must be
  // aligned, in order, and the file must reach the end of the last one.
  uint64_t expected_offset = sizeof(Header);
  for (int s = 0; s < snapshot_internal::kNumSections; ++s) {
    const SectionRef& ref = header->sections[s];
    if (ref.offset != expected_offset) {
      SetError(error, SnapshotErrorCode::kMalformed,
               "section " + std::to_string(s) + " misplaced");
      return std::nullopt;
    }
    expected_offset += Pad8(ref.size);
  }
  if (expected_offset > size) {
    SetError(error, SnapshotErrorCode::kTruncated,
             path + " truncated: sections need " +
                 std::to_string(expected_offset) + " bytes, file has " +
                 std::to_string(size));
    return std::nullopt;
  }

  // Paging hints: serving touches rows in request order, so the bulk of the
  // file (the CSR triple keyed by kRowOffsets) pages in randomly; the
  // header, vocabulary, and row/column metadata ahead of it are read by
  // validation and then consulted on every lookup, so prefetch that prefix
  // eagerly. Advisory only — failures are ignored.
  madvise(const_cast<uint8_t*>(base), size, MADV_RANDOM);
  madvise(const_cast<uint8_t*>(base),
          static_cast<size_t>(
              header->sections[snapshot_internal::kRowOffsets].offset),
          MADV_WILLNEED);

  // Whole-file checksum with the stored checksum field zeroed.
  Crc32 crc;
  Header zeroed = *header;
  zeroed.crc32 = 0;
  crc.Update(&zeroed, sizeof(zeroed));
  crc.Update(base + sizeof(Header), size - sizeof(Header));
  if (crc.Value() != header->crc32) {
    SetError(error, SnapshotErrorCode::kCrcMismatch,
             path + " failed its checksum (corrupted)");
    return std::nullopt;
  }

  if (header->num_rows == 0 || header->num_cols == 0) {
    SetError(error, SnapshotErrorCode::kEmpty,
             path + " holds an empty feature matrix");
    return std::nullopt;
  }
  if (header->num_labels == 0 || header->num_labels > graph::kMaxLabels) {
    SetError(error, SnapshotErrorCode::kMalformed, "bad label alphabet size");
    return std::nullopt;
  }

  Snapshot snapshot;
  snapshot.mapping_ = mapping;
  snapshot.header_ = header;

  using snapshot_internal::Section;
  const size_t rows = header->num_rows;
  const size_t cols = header->num_cols;
  const size_t nnz = header->nnz;
  std::span<const uint8_t> label_blob = {
      base + header->sections[Section::kLabelNames].offset,
      header->sections[Section::kLabelNames].size};
  const bool spans_ok =
      SectionSpan(base, header->sections[Section::kNodeIds], rows,
                  &snapshot.node_ids_) &&
      SectionSpan(base, header->sections[Section::kNodeLabels], rows,
                  &snapshot.node_labels_) &&
      SectionSpan(base, header->sections[Section::kSortedRows], rows,
                  &snapshot.sorted_rows_) &&
      SectionSpan(base, header->sections[Section::kFeatureHashes], cols,
                  &snapshot.feature_hashes_) &&
      SectionSpan(base, header->sections[Section::kColumnTotals], cols,
                  &snapshot.column_totals_) &&
      SectionSpan(base, header->sections[Section::kEncodingOffsets], cols + 1,
                  &snapshot.encoding_offsets_) &&
      SectionSpan(base, header->sections[Section::kRowOffsets], rows + 1,
                  &snapshot.row_offsets_) &&
      SectionSpan(base, header->sections[Section::kColIndices], nnz,
                  &snapshot.col_indices_) &&
      SectionSpan(base, header->sections[Section::kValues], nnz,
                  &snapshot.values_);
  if (!spans_ok) {
    SetError(error, SnapshotErrorCode::kMalformed,
             "section sizes disagree with the header counts");
    return std::nullopt;
  }
  snapshot.encoding_bytes_ = {
      base + header->sections[Section::kEncodingBytes].offset,
      header->sections[Section::kEncodingBytes].size};

  // Structural invariants, so accessors never need bounds checks: offset
  // arrays monotone and ending at their blob sizes, indices in range, the
  // sorted row index strictly increasing by node id (implies a valid
  // permutation with unique ids).
  auto monotone = [](std::span<const uint64_t> offsets, uint64_t end) {
    if (offsets.front() != 0 || offsets.back() != end) return false;
    for (size_t i = 1; i < offsets.size(); ++i) {
      if (offsets[i] < offsets[i - 1]) return false;
    }
    return true;
  };
  if (!monotone(snapshot.encoding_offsets_, snapshot.encoding_bytes_.size()) ||
      !monotone(snapshot.row_offsets_, nnz)) {
    SetError(error, SnapshotErrorCode::kMalformed,
             "non-monotone section offsets");
    return std::nullopt;
  }
  for (uint32_t col : snapshot.col_indices_) {
    if (col >= cols) {
      SetError(error, SnapshotErrorCode::kMalformed,
               "column index out of range");
      return std::nullopt;
    }
  }
  for (size_t i = 0; i < rows; ++i) {
    if (snapshot.sorted_rows_[i] >= rows ||
        (i > 0 && snapshot.node_ids_[snapshot.sorted_rows_[i - 1]] >=
                      snapshot.node_ids_[snapshot.sorted_rows_[i]])) {
      SetError(error, SnapshotErrorCode::kMalformed, "bad sorted row index");
      return std::nullopt;
    }
  }

  // Label alphabet: u32 count, then u32 length + bytes per name.
  {
    size_t pos = 0;
    auto read_u32 = [&](uint32_t* out) {
      if (pos + sizeof(uint32_t) > label_blob.size()) return false;
      std::memcpy(out, label_blob.data() + pos, sizeof(uint32_t));
      pos += sizeof(uint32_t);
      return true;
    };
    uint32_t count = 0;
    if (!read_u32(&count) || count != header->num_labels) {
      SetError(error, SnapshotErrorCode::kMalformed, "bad label name table");
      return std::nullopt;
    }
    snapshot.label_names_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t length = 0;
      if (!read_u32(&length) || pos + length > label_blob.size()) {
        SetError(error, SnapshotErrorCode::kMalformed, "bad label name table");
        return std::nullopt;
      }
      snapshot.label_names_.emplace_back(
          reinterpret_cast<const char*>(label_blob.data() + pos), length);
      pos += length;
    }
  }

  SetError(error, SnapshotErrorCode::kOk, "");
  return snapshot;
}

}  // namespace hsgf::io
