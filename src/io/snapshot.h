#ifndef HSGF_IO_SNAPSHOT_H_
#define HSGF_IO_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/extractor.h"
#include "core/feature_matrix.h"
#include "graph/het_graph.h"

namespace hsgf::io {

// Persistent feature-store snapshot (format v1): one self-contained binary
// file holding an extraction's feature matrix plus everything needed to
// interpret and re-derive it — the label alphabet, the encoding vocabulary
// (feature hashes, per-column totals, canonical encodings), the per-node
// metadata (original node ids + labels), and the census configuration
// (emax, effective dmax, start-label masking, log1p, hash seed).
//
// The writer streams sections behind a fixed header and patches a CRC-32 of
// the whole file (header checksum field zeroed) at the end; the reader mmaps
// the file and serves every array zero-copy after validating magic, version,
// section bounds, the CRC, and the structural invariants (so reads after a
// successful open cannot go out of bounds). Byte layout is documented in
// DESIGN.md §"Snapshot format & serving". Little-endian hosts only, like
// every other binary path in this repo.

enum class SnapshotErrorCode {
  kOk = 0,
  kIoError,       // open/read/write/mmap failed (message carries errno text)
  kBadMagic,      // not a snapshot file
  kBadVersion,    // snapshot from an incompatible format version
  kTruncated,     // file shorter than the header or its section table claims
  kCrcMismatch,   // bytes corrupted in place
  kEmpty,         // zero rows or zero feature columns
  kMalformed,     // internal inconsistency (bad offsets, counts, indices)
};

const char* SnapshotErrorCodeName(SnapshotErrorCode code);

struct SnapshotError {
  SnapshotErrorCode code = SnapshotErrorCode::kOk;
  std::string message;

  bool ok() const { return code == SnapshotErrorCode::kOk; }
};

namespace snapshot_internal {

inline constexpr char kMagic[8] = {'H', 'S', 'G', 'F', 'S', 'N', 'A', 'P'};
inline constexpr uint32_t kFormatVersion = 1;

inline constexpr uint32_t kFlagLog1p = 1u << 0;
inline constexpr uint32_t kFlagMaskStartLabel = 1u << 1;

// Section order is also the physical order in the file.
enum Section : int {
  kLabelNames = 0,   // u32 count, then per label: u32 length + bytes
  kNodeIds,          // i32[num_rows], row order
  kNodeLabels,       // u8[num_rows]
  kSortedRows,       // u32[num_rows], row indices ordered by ascending node id
  kFeatureHashes,    // u64[num_cols], column order
  kColumnTotals,     // f64[num_cols], sum of the stored column values
  kEncodingOffsets,  // u64[num_cols + 1] into kEncodingBytes
  kEncodingBytes,    // concatenated canonical encodings (may have empty runs)
  kRowOffsets,       // u64[num_rows + 1] into the CSR arrays
  kColIndices,       // u32[nnz]
  kValues,           // f64[nnz]
  kNumSections,
};

struct SectionRef {
  uint64_t offset = 0;  // absolute, 8-byte aligned
  uint64_t size = 0;    // bytes, before padding
};

struct Header {
  char magic[8];
  uint32_t version;
  uint32_t header_size;
  uint32_t crc32;  // CRC-32 of the whole file with this field zeroed
  uint32_t flags;
  uint64_t hash_seed;
  int32_t max_edges;
  int32_t effective_dmax;
  uint32_t num_labels;
  uint32_t num_rows;
  uint32_t num_cols;
  uint32_t reserved0;
  uint64_t nnz;
  SectionRef sections[16];  // kNumSections used; the rest reserved as zero
};

static_assert(sizeof(Header) == 320, "snapshot header layout changed");

}  // namespace snapshot_internal

// Everything SaveSnapshot persists. Views borrow from the caller (notably
// `features`); they must stay alive for the duration of the call only.
struct SnapshotContents {
  int max_edges = 5;
  int effective_dmax = 0;  // 0 = unlimited
  bool mask_start_label = false;
  bool log1p_transform = true;
  uint64_t hash_seed = 0;

  std::vector<std::string> label_names;

  // Row metadata, one entry per feature-matrix row, same order. Node ids
  // must be unique (they key the serving-time row lookup).
  std::vector<graph::NodeId> node_ids;
  std::vector<graph::Label> node_labels;

  const core::FeatureSet* features = nullptr;
};

// Assembles SnapshotContents from an extraction run: `nodes` is the node
// list passed to Extractor::Run (row order), `config` the extractor config
// the run used. The returned struct borrows result.features. Generic over
// the graph representation (CSR HetGraph, gstore::CompressedGraph, ...):
// only label_names() and label(v) are consulted.
template <typename GraphT>
SnapshotContents MakeSnapshotContents(const GraphT& graph,
                                      const std::vector<graph::NodeId>& nodes,
                                      const core::ExtractionResult& result,
                                      const core::ExtractorConfig& config) {
  SnapshotContents contents;
  contents.max_edges = config.census.max_edges;
  contents.effective_dmax = result.effective_dmax;
  contents.mask_start_label = config.census.mask_start_label;
  contents.log1p_transform = config.features.log1p_transform;
  contents.hash_seed = config.census.hash_seed;
  contents.label_names = graph.label_names();
  contents.node_ids = nodes;
  contents.node_labels.reserve(nodes.size());
  for (graph::NodeId v : nodes) contents.node_labels.push_back(graph.label(v));
  contents.features = &result.features;
  return contents;
}

// Writes the snapshot to `path` (overwriting). Fails closed with kEmpty on
// zero rows/columns and kMalformed on inconsistent contents; nothing is a
// valid snapshot at `path` after a failed save.
bool SaveSnapshot(const std::string& path, const SnapshotContents& contents,
                  SnapshotError* error = nullptr);

// Read-only view of an open snapshot. Cheap to copy (copies share the
// mapping); all span accessors point straight into the mapped file and stay
// valid as long as any copy of the Snapshot lives.
class Snapshot {
 public:
  Snapshot() = default;

  uint32_t num_rows() const { return header_->num_rows; }
  uint32_t num_cols() const { return header_->num_cols; }
  uint32_t num_labels() const { return header_->num_labels; }
  uint64_t nnz() const { return header_->nnz; }
  int max_edges() const { return header_->max_edges; }
  int effective_dmax() const { return header_->effective_dmax; }
  uint64_t hash_seed() const { return header_->hash_seed; }
  bool log1p_transform() const {
    return (header_->flags & snapshot_internal::kFlagLog1p) != 0;
  }
  bool mask_start_label() const {
    return (header_->flags & snapshot_internal::kFlagMaskStartLabel) != 0;
  }

  const std::vector<std::string>& label_names() const { return label_names_; }

  // Row order matches the node list of the producing extraction.
  std::span<const int32_t> node_ids() const { return node_ids_; }
  std::span<const uint8_t> node_labels() const { return node_labels_; }

  // Column order is BuildFeatureSet's: descending total count, ties by hash.
  std::span<const uint64_t> feature_hashes() const { return feature_hashes_; }
  std::span<const double> column_totals() const { return column_totals_; }

  // Canonical encoding of column `col`; empty when the producing census did
  // not materialize it (keep_encodings off or hash dropped).
  core::Encoding EncodingOf(uint32_t col) const;

  // Row index holding `node`, or -1 when the node is not in the snapshot
  // (binary search over the sorted index; O(log num_rows)).
  int64_t FindRow(graph::NodeId node) const;

  struct SparseRow {
    std::span<const uint32_t> cols;  // ascending
    std::span<const double> values;
  };
  SparseRow Row(uint32_t row) const;

  // The row expanded to a dense num_cols() vector.
  std::vector<double> DenseRow(uint32_t row) const;

  size_t file_size() const { return mapping_ ? mapping_->size : 0; }

 private:
  friend std::optional<Snapshot> OpenSnapshot(const std::string& path,
                                              SnapshotError* error);

  struct Mapping {
    Mapping(const uint8_t* data_in, size_t size_in)
        : data(data_in), size(size_in) {}
    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;
    ~Mapping();

    const uint8_t* data = nullptr;
    size_t size = 0;
  };

  std::shared_ptr<const Mapping> mapping_;
  const snapshot_internal::Header* header_ = nullptr;
  std::vector<std::string> label_names_;
  std::span<const int32_t> node_ids_;
  std::span<const uint8_t> node_labels_;
  std::span<const uint32_t> sorted_rows_;
  std::span<const uint64_t> feature_hashes_;
  std::span<const double> column_totals_;
  std::span<const uint64_t> encoding_offsets_;
  std::span<const uint8_t> encoding_bytes_;
  std::span<const uint64_t> row_offsets_;
  std::span<const uint32_t> col_indices_;
  std::span<const double> values_;
};

// Maps and validates the snapshot at `path`. On any failure returns
// std::nullopt with a typed error; a returned Snapshot is fully validated
// (every subsequent accessor is bounds-safe).
std::optional<Snapshot> OpenSnapshot(const std::string& path,
                                     SnapshotError* error = nullptr);

}  // namespace hsgf::io

#endif  // HSGF_IO_SNAPSHOT_H_
