#include "eval/classification.h"

#include <cassert>
#include <cstddef>

namespace hsgf::eval {

std::vector<std::vector<int>> ConfusionMatrix(const std::vector<int>& truth,
                                              const std::vector<int>& predicted,
                                              int num_classes) {
  assert(truth.size() == predicted.size());
  std::vector<std::vector<int>> confusion(num_classes,
                                          std::vector<int>(num_classes, 0));
  for (size_t i = 0; i < truth.size(); ++i) {
    assert(truth[i] >= 0 && truth[i] < num_classes);
    assert(predicted[i] >= 0 && predicted[i] < num_classes);
    ++confusion[truth[i]][predicted[i]];
  }
  return confusion;
}

ClassificationReport EvaluateClassification(const std::vector<int>& truth,
                                            const std::vector<int>& predicted,
                                            int num_classes) {
  ClassificationReport report;
  report.per_class.resize(num_classes);
  if (truth.empty()) return report;

  std::vector<std::vector<int>> confusion =
      ConfusionMatrix(truth, predicted, num_classes);

  int correct = 0;
  int classes_with_support = 0;
  for (int c = 0; c < num_classes; ++c) {
    int true_positive = confusion[c][c];
    int actual = 0;
    int predicted_count = 0;
    for (int o = 0; o < num_classes; ++o) {
      actual += confusion[c][o];
      predicted_count += confusion[o][c];
    }
    correct += true_positive;
    ClassMetrics& m = report.per_class[c];
    m.support = actual;
    m.precision = predicted_count > 0
                      ? static_cast<double>(true_positive) / predicted_count
                      : 0.0;
    m.recall = actual > 0 ? static_cast<double>(true_positive) / actual : 0.0;
    m.f1 = (m.precision + m.recall) > 0.0
               ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
               : 0.0;
    if (actual > 0) {
      ++classes_with_support;
      report.macro_f1 += m.f1;
      report.macro_precision += m.precision;
      report.macro_recall += m.recall;
    }
  }
  report.accuracy = static_cast<double>(correct) / truth.size();
  if (classes_with_support > 0) {
    report.macro_f1 /= classes_with_support;
    report.macro_precision /= classes_with_support;
    report.macro_recall /= classes_with_support;
  }
  return report;
}

}  // namespace hsgf::eval
