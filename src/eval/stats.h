#ifndef HSGF_EVAL_STATS_H_
#define HSGF_EVAL_STATS_H_

#include <vector>

namespace hsgf::eval {

// Summary statistics for repeated-trial experiment results (the paper
// reports 95% confidence intervals over 100 training/test resamples,
// Fig. 3 and Fig. 5).

double Mean(const std::vector<double>& values);

// Sample standard deviation (n - 1 denominator); 0 for fewer than 2 values.
double SampleStdDev(const std::vector<double>& values);

// Value at the given percentile (in [0, 100]) using the nearest-rank
// method, as reported for per-node extraction times in Table 3.
double Percentile(std::vector<double> values, double percentile);

struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double half_width = 0.0;
};

// Normal-approximation 95% CI of the mean: mean ± 1.96 · s/√n.
ConfidenceInterval Ci95(const std::vector<double>& values);

}  // namespace hsgf::eval

#endif  // HSGF_EVAL_STATS_H_
