#include "eval/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hsgf::eval {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double SampleStdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double Percentile(std::vector<double> values, double percentile) {
  assert(percentile >= 0.0 && percentile <= 100.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(
      std::ceil(percentile / 100.0 * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  return values[rank - 1];
}

ConfidenceInterval Ci95(const std::vector<double>& values) {
  ConfidenceInterval ci;
  ci.mean = Mean(values);
  if (values.size() >= 2) {
    ci.half_width = 1.96 * SampleStdDev(values) /
                    std::sqrt(static_cast<double>(values.size()));
  }
  ci.lower = ci.mean - ci.half_width;
  ci.upper = ci.mean + ci.half_width;
  return ci;
}

}  // namespace hsgf::eval
