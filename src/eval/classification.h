#ifndef HSGF_EVAL_CLASSIFICATION_H_
#define HSGF_EVAL_CLASSIFICATION_H_

#include <vector>

namespace hsgf::eval {

// Classification metrics for the label-prediction task (§4.3.1). Labels are
// dense class ids in [0, num_classes).

struct ClassMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int support = 0;  // number of true instances of the class
};

struct ClassificationReport {
  std::vector<ClassMetrics> per_class;
  double accuracy = 0.0;
  // Unweighted mean of per-class F1 scores (the Macro F1 of the reference
  // embedding evaluations the paper compares against). Classes with zero
  // support are excluded from the average.
  double macro_f1 = 0.0;
  double macro_precision = 0.0;
  double macro_recall = 0.0;
};

ClassificationReport EvaluateClassification(const std::vector<int>& truth,
                                            const std::vector<int>& predicted,
                                            int num_classes);

// Confusion matrix, row = true class, column = predicted class.
std::vector<std::vector<int>> ConfusionMatrix(const std::vector<int>& truth,
                                              const std::vector<int>& predicted,
                                              int num_classes);

}  // namespace hsgf::eval

#endif  // HSGF_EVAL_CLASSIFICATION_H_
