#include "eval/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hsgf::eval {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string Table::Int(long long value) { return std::to_string(value); }

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      if (c == 0) {
        out << cell << std::string(widths[c] - cell.size(), ' ');
      } else {
        out << "  " << std::string(widths[c] - cell.size(), ' ') << cell;
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace hsgf::eval
