#ifndef HSGF_EVAL_NDCG_H_
#define HSGF_EVAL_NDCG_H_

#include <vector>

namespace hsgf::eval {

// Normalized discounted cumulative gain at rank n (paper Eq. 6, following
// Järvelin & Kekäläinen): the DCG of the true relevances in *predicted*
// rank order, normalized by the ideal DCG. 1.0 is a perfect ranking.
//
// `predicted_scores` and `true_relevance` are parallel arrays over the same
// items. Ties in predicted scores are broken by item index (deterministic).
double NdcgAtN(const std::vector<double>& predicted_scores,
               const std::vector<double>& true_relevance, int n);

// The paper's headline metric: NDCG@20 (2016 KDD Cup task definition).
inline double Ndcg20(const std::vector<double>& predicted_scores,
                     const std::vector<double>& true_relevance) {
  return NdcgAtN(predicted_scores, true_relevance, 20);
}

}  // namespace hsgf::eval

#endif  // HSGF_EVAL_NDCG_H_
