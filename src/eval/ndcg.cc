#include "eval/ndcg.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace hsgf::eval {

double NdcgAtN(const std::vector<double>& predicted_scores,
               const std::vector<double>& true_relevance, int n) {
  assert(predicted_scores.size() == true_relevance.size());
  const int count = static_cast<int>(true_relevance.size());
  if (count == 0 || n <= 0) return 0.0;
  n = std::min(n, count);

  std::vector<int> by_prediction(count);
  std::iota(by_prediction.begin(), by_prediction.end(), 0);
  std::stable_sort(by_prediction.begin(), by_prediction.end(),
                   [&predicted_scores](int a, int b) {
                     return predicted_scores[a] > predicted_scores[b];
                   });

  std::vector<int> by_truth(count);
  std::iota(by_truth.begin(), by_truth.end(), 0);
  std::stable_sort(by_truth.begin(), by_truth.end(),
                   [&true_relevance](int a, int b) {
                     return true_relevance[a] > true_relevance[b];
                   });

  double dcg = 0.0;
  double ideal = 0.0;
  for (int i = 0; i < n; ++i) {
    const double discount = std::log2(static_cast<double>(i) + 2.0);
    dcg += true_relevance[by_prediction[i]] / discount;
    ideal += true_relevance[by_truth[i]] / discount;
  }
  return ideal > 0.0 ? dcg / ideal : 0.0;
}

}  // namespace hsgf::eval
