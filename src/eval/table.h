#ifndef HSGF_EVAL_TABLE_H_
#define HSGF_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace hsgf::eval {

// Fixed-width text table used by the benchmark binaries to print the
// paper's tables and figure series in a uniform format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string Num(double value, int decimals = 2);
  static std::string Int(long long value);

  // Renders with column alignment (left for the first column, right for the
  // rest) and a header underline.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hsgf::eval

#endif  // HSGF_EVAL_TABLE_H_
