#include "embed/node2vec.h"

#include "util/rng.h"

namespace hsgf::embed {

ml::Matrix Node2VecEmbeddings(const graph::HetGraph& graph,
                              const std::vector<graph::NodeId>& nodes,
                              const Node2VecOptions& options) {
  util::Rng rng(options.seed);
  WalkCorpus corpus =
      Node2VecWalks(graph, options.walks_per_node, options.walk_length,
                    options.p, options.q, rng);
  SgnsModel model(graph.num_nodes(), options.sgns);
  model.Train(corpus, rng);
  return model.EmbeddingsFor(nodes);
}

}  // namespace hsgf::embed
