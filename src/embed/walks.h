#ifndef HSGF_EMBED_WALKS_H_
#define HSGF_EMBED_WALKS_H_

#include <cstdint>
#include <vector>

#include "graph/het_graph.h"
#include "util/rng.h"

namespace hsgf::embed {

// Random-walk corpora for DeepWalk and node2vec. A corpus is a list of node
// sequences, consumed by the SGNS trainer as "sentences".
using WalkCorpus = std::vector<std::vector<graph::NodeId>>;

// DeepWalk: `walks_per_node` truncated uniform random walks of length
// `walk_length` from every node (walks stop early at isolated nodes or
// dead ends — impossible in undirected graphs unless degree 0).
WalkCorpus UniformWalks(const graph::HetGraph& graph, int walks_per_node,
                        int walk_length, util::Rng& rng);

// node2vec second-order walks with return parameter p and in-out parameter
// q (Grover & Leskovec 2016). Transition weights from (prev -> current) to
// candidate x:
//   1/p if x == prev, 1 if x adjacent to prev, 1/q otherwise.
// Implemented with rejection sampling (no per-edge alias tables), so memory
// stays O(V + E).
WalkCorpus Node2VecWalks(const graph::HetGraph& graph, int walks_per_node,
                         int walk_length, double p, double q, util::Rng& rng);

}  // namespace hsgf::embed

#endif  // HSGF_EMBED_WALKS_H_
