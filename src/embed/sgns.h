#ifndef HSGF_EMBED_SGNS_H_
#define HSGF_EMBED_SGNS_H_

#include <cstdint>
#include <vector>

#include "embed/walks.h"
#include "graph/het_graph.h"
#include "ml/matrix.h"
#include "util/rng.h"

namespace hsgf::embed {

// Skip-gram with negative sampling (word2vec-style) over a random-walk
// corpus — the training core shared by DeepWalk and node2vec. Negative
// samples are drawn from the corpus unigram distribution raised to 3/4.
struct SgnsOptions {
  int dimensions = 128;    // paper default d = 128
  int window = 10;         // paper default context size k = 10
  int negatives = 5;       // paper default K = 5
  int epochs = 1;
  double initial_lr = 0.025;
  double min_lr = 0.0001;
  uint64_t seed = 11;
};

// Trained node embeddings: one row per graph node (all-zero rows for nodes
// absent from the corpus).
class SgnsModel {
 public:
  SgnsModel(int num_nodes, const SgnsOptions& options);

  // Trains in place over the corpus (linear learning-rate decay across all
  // epoch-token pairs, as in word2vec).
  void Train(const WalkCorpus& corpus, util::Rng& rng);

  int dimensions() const { return options_.dimensions; }

  const std::vector<float>& input_vectors() const { return input_; }

  // Copies the input-side embedding of each requested node into a dense
  // feature matrix (rows follow `nodes`).
  ml::Matrix EmbeddingsFor(const std::vector<graph::NodeId>& nodes) const;

 private:
  void TrainPair(int center, int context, double lr, util::Rng& rng,
                 const class AliasTable& negative_table,
                 std::vector<float>& gradient);

  SgnsOptions options_;
  int num_nodes_;
  std::vector<float> input_;   // num_nodes x d
  std::vector<float> output_;  // num_nodes x d (context vectors)
};

}  // namespace hsgf::embed

#endif  // HSGF_EMBED_SGNS_H_
