#ifndef HSGF_EMBED_ALIAS_H_
#define HSGF_EMBED_ALIAS_H_

#include <vector>

#include "util/rng.h"

namespace hsgf::embed {

// Walker's alias method: O(1) sampling from a fixed discrete distribution
// after O(n) setup. Used for the SGNS negative-sampling table and LINE's
// edge sampler.
class AliasTable {
 public:
  AliasTable() = default;

  // Builds from non-negative weights (at least one must be positive).
  explicit AliasTable(const std::vector<double>& weights);

  int size() const { return static_cast<int>(probability_.size()); }
  bool empty() const { return probability_.empty(); }

  // Draws an index with probability proportional to its weight.
  int Sample(util::Rng& rng) const;

 private:
  std::vector<double> probability_;
  std::vector<int> alias_;
};

}  // namespace hsgf::embed

#endif  // HSGF_EMBED_ALIAS_H_
