#ifndef HSGF_EMBED_NODE2VEC_H_
#define HSGF_EMBED_NODE2VEC_H_

#include <cstdint>
#include <vector>

#include "embed/sgns.h"
#include "graph/het_graph.h"
#include "ml/matrix.h"

namespace hsgf::embed {

// node2vec (Grover & Leskovec 2016): second-order biased random walks with
// return parameter p and in-out parameter q, trained with skip-gram.
// Paper defaults: p = q = 1, r = 10, l = 80, d = 128, k = 10, K = 5.
struct Node2VecOptions {
  double p = 1.0;
  double q = 1.0;
  int walks_per_node = 10;
  int walk_length = 80;
  SgnsOptions sgns;
  uint64_t seed = 22;
};

ml::Matrix Node2VecEmbeddings(const graph::HetGraph& graph,
                              const std::vector<graph::NodeId>& nodes,
                              const Node2VecOptions& options);

}  // namespace hsgf::embed

#endif  // HSGF_EMBED_NODE2VEC_H_
