#include "embed/deepwalk.h"

#include "util/rng.h"

namespace hsgf::embed {

ml::Matrix DeepWalkEmbeddings(const graph::HetGraph& graph,
                              const std::vector<graph::NodeId>& nodes,
                              const DeepWalkOptions& options) {
  util::Rng rng(options.seed);
  WalkCorpus corpus = UniformWalks(graph, options.walks_per_node,
                                   options.walk_length, rng);
  SgnsModel model(graph.num_nodes(), options.sgns);
  model.Train(corpus, rng);
  return model.EmbeddingsFor(nodes);
}

}  // namespace hsgf::embed
