#ifndef HSGF_EMBED_DEEPWALK_H_
#define HSGF_EMBED_DEEPWALK_H_

#include <cstdint>
#include <vector>

#include "embed/sgns.h"
#include "graph/het_graph.h"
#include "ml/matrix.h"

namespace hsgf::embed {

// DeepWalk (Perozzi et al. 2014): truncated uniform random walks fed to a
// skip-gram model. Paper defaults: r = 10 walks/node, l = 80, d = 128,
// window k = 10, K = 5 negatives (§4.2.2). The benchmarks scale these down
// for single-machine runtime; the knobs below accept the paper values.
struct DeepWalkOptions {
  int walks_per_node = 10;
  int walk_length = 80;
  SgnsOptions sgns;
  uint64_t seed = 21;
};

// Trains on the whole graph, returns embeddings for `nodes`.
ml::Matrix DeepWalkEmbeddings(const graph::HetGraph& graph,
                              const std::vector<graph::NodeId>& nodes,
                              const DeepWalkOptions& options);

}  // namespace hsgf::embed

#endif  // HSGF_EMBED_DEEPWALK_H_
