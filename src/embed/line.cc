#include "embed/line.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "embed/alias.h"
#include "util/rng.h"

namespace hsgf::embed {

namespace {

float FastSigmoid(float z) {
  if (z > 8.0f) return 1.0f;
  if (z < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-z));
}

// One training order of LINE. For first-order proximity the "context" table
// aliases the vertex table (symmetric model); for second-order it is a
// separate parameter set.
void TrainOrder(const graph::HetGraph& graph, int d, int64_t samples,
                int negatives, double initial_lr, double min_lr,
                bool second_order, std::vector<float>& vertex,
                util::Rng& rng) {
  const graph::NodeId n = graph.num_nodes();
  // Flatten the edge list once for uniform edge sampling (unweighted graph,
  // so a plain uniform draw replaces LINE's weighted alias table).
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  edges.reserve(graph.num_edges() * 2);
  for (graph::NodeId v = 0; v < n; ++v) {
    for (graph::NodeId u : graph.neighbors(v)) {
      edges.emplace_back(v, u);  // both directions: undirected edges
    }
  }
  if (edges.empty()) return;

  // Negative table over degree^0.75 (LINE's vertex noise distribution).
  std::vector<double> noise(n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    noise[v] = std::pow(static_cast<double>(graph.degree(v)), 0.75);
  }
  AliasTable negative_table(noise);

  std::vector<float> context;
  if (second_order) {
    context.assign(static_cast<size_t>(n) * d, 0.0f);
  }
  std::vector<float>& out_table = second_order ? context : vertex;

  std::vector<float> gradient(d);
  for (int64_t s = 0; s < samples; ++s) {
    const double progress = static_cast<double>(s) / samples;
    const float lr = static_cast<float>(
        std::max(min_lr, initial_lr * (1.0 - progress)));
    const auto& [src, dst] = edges[rng.UniformInt(edges.size())];
    float* in = vertex.data() + static_cast<size_t>(src) * d;
    std::fill(gradient.begin(), gradient.end(), 0.0f);
    for (int k = 0; k <= negatives; ++k) {
      graph::NodeId target;
      float label;
      if (k == 0) {
        target = dst;
        label = 1.0f;
      } else {
        target = negative_table.Sample(rng);
        if (target == dst || target == src) continue;
        label = 0.0f;
      }
      float* out = out_table.data() + static_cast<size_t>(target) * d;
      float dot = 0.0f;
      for (int i = 0; i < d; ++i) dot += in[i] * out[i];
      const float g = (label - FastSigmoid(dot)) * lr;
      for (int i = 0; i < d; ++i) {
        gradient[i] += g * out[i];
        out[i] += g * in[i];
      }
    }
    for (int i = 0; i < d; ++i) in[i] += gradient[i];
  }
}

}  // namespace

ml::Matrix LineEmbeddings(const graph::HetGraph& graph,
                          const std::vector<graph::NodeId>& nodes,
                          const LineOptions& options) {
  assert(options.dimensions >= 2);
  const int half = options.dimensions / 2;
  const graph::NodeId n = graph.num_nodes();
  int64_t samples = options.samples > 0
                        ? options.samples
                        : 50 * std::max<int64_t>(1, graph.num_edges());

  util::Rng rng(options.seed);
  auto init_table = [&rng, half, n] {
    std::vector<float> table(static_cast<size_t>(n) * half);
    for (float& v : table) {
      v = static_cast<float>((rng.UniformReal() - 0.5) / half);
    }
    return table;
  };
  std::vector<float> first = init_table();
  std::vector<float> second = init_table();

  TrainOrder(graph, half, samples, options.negatives, options.initial_lr,
             options.min_lr, /*second_order=*/false, first, rng);
  TrainOrder(graph, half, samples, options.negatives, options.initial_lr,
             options.min_lr, /*second_order=*/true, second, rng);

  // Concatenate the (L2-normalized, as in the reference implementation)
  // halves.
  auto normalized_row = [half](const std::vector<float>& table,
                               graph::NodeId v, double* dst) {
    const float* src = table.data() + static_cast<size_t>(v) * half;
    double norm = 0.0;
    for (int i = 0; i < half; ++i) norm += src[i] * src[i];
    norm = norm > 0.0 ? std::sqrt(norm) : 1.0;
    for (int i = 0; i < half; ++i) dst[i] = src[i] / norm;
  };
  ml::Matrix out(static_cast<int>(nodes.size()), 2 * half);
  for (size_t r = 0; r < nodes.size(); ++r) {
    double* dst = out.row(static_cast<int>(r));
    normalized_row(first, nodes[r], dst);
    normalized_row(second, nodes[r], dst + half);
  }
  return out;
}

}  // namespace hsgf::embed
