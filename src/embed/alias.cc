#include "embed/alias.h"

#include <cassert>

namespace hsgf::embed {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const int n = static_cast<int>(weights.size());
  assert(n > 0);
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (int i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<int> small;
  std::vector<int> large;
  for (int i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    int s = small.back();
    small.pop_back();
    int l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (int i : large) probability_[i] = 1.0;
  for (int i : small) probability_[i] = 1.0;  // numerical leftovers
}

int AliasTable::Sample(util::Rng& rng) const {
  assert(!probability_.empty());
  int column = static_cast<int>(rng.UniformInt(probability_.size()));
  return rng.UniformReal() < probability_[column] ? column : alias_[column];
}

}  // namespace hsgf::embed
