#include "embed/sgns.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "embed/alias.h"

namespace hsgf::embed {

namespace {

float FastSigmoid(float z) {
  if (z > 8.0f) return 1.0f;
  if (z < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-z));
}

}  // namespace

SgnsModel::SgnsModel(int num_nodes, const SgnsOptions& options)
    : options_(options), num_nodes_(num_nodes) {
  assert(num_nodes > 0 && options.dimensions > 0);
  const size_t total =
      static_cast<size_t>(num_nodes) * options_.dimensions;
  input_.assign(total, 0.0f);
  output_.assign(total, 0.0f);
  // word2vec-style init: input uniform in [-0.5/d, 0.5/d), output zero.
  util::Rng rng(options_.seed ^ 0xabcdef12345ULL);
  for (float& v : input_) {
    v = static_cast<float>((rng.UniformReal() - 0.5) / options_.dimensions);
  }
}

void SgnsModel::TrainPair(int center, int context, double lr, util::Rng& rng,
                          const AliasTable& negative_table,
                          std::vector<float>& gradient) {
  const int d = options_.dimensions;
  float* in = input_.data() + static_cast<size_t>(center) * d;
  std::fill(gradient.begin(), gradient.end(), 0.0f);
  for (int k = 0; k <= options_.negatives; ++k) {
    int target;
    float label;
    if (k == 0) {
      target = context;
      label = 1.0f;
    } else {
      target = negative_table.Sample(rng);
      if (target == context) continue;
      label = 0.0f;
    }
    float* out = output_.data() + static_cast<size_t>(target) * d;
    float dot = 0.0f;
    for (int i = 0; i < d; ++i) dot += in[i] * out[i];
    const float grad = (label - FastSigmoid(dot)) * static_cast<float>(lr);
    for (int i = 0; i < d; ++i) {
      gradient[i] += grad * out[i];
      out[i] += grad * in[i];
    }
  }
  for (int i = 0; i < d; ++i) in[i] += gradient[i];
}

void SgnsModel::Train(const WalkCorpus& corpus, util::Rng& rng) {
  // Unigram^0.75 negative-sampling distribution from corpus frequencies.
  std::vector<double> weights(num_nodes_, 0.0);
  size_t total_tokens = 0;
  for (const auto& walk : corpus) {
    for (graph::NodeId node : walk) {
      weights[node] += 1.0;
      ++total_tokens;
    }
  }
  if (total_tokens == 0) return;
  for (double& w : weights) w = std::pow(w, 0.75);
  AliasTable negative_table(weights);

  std::vector<float> gradient(options_.dimensions);
  const size_t total_steps =
      static_cast<size_t>(options_.epochs) * total_tokens;
  size_t step = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const auto& walk : corpus) {
      const int len = static_cast<int>(walk.size());
      for (int pos = 0; pos < len; ++pos, ++step) {
        const double progress =
            static_cast<double>(step) / static_cast<double>(total_steps);
        const double lr = std::max(
            options_.min_lr, options_.initial_lr * (1.0 - progress));
        // word2vec's dynamic window: uniform in [1, window].
        const int window =
            1 + static_cast<int>(rng.UniformInt(options_.window));
        const int begin = std::max(0, pos - window);
        const int end = std::min(len - 1, pos + window);
        for (int ctx = begin; ctx <= end; ++ctx) {
          if (ctx == pos) continue;
          TrainPair(walk[pos], walk[ctx], lr, rng, negative_table, gradient);
        }
      }
    }
  }
}

ml::Matrix SgnsModel::EmbeddingsFor(
    const std::vector<graph::NodeId>& nodes) const {
  const int d = options_.dimensions;
  ml::Matrix out(static_cast<int>(nodes.size()), d);
  for (size_t r = 0; r < nodes.size(); ++r) {
    const float* src = input_.data() + static_cast<size_t>(nodes[r]) * d;
    double* dst = out.row(static_cast<int>(r));
    for (int i = 0; i < d; ++i) dst[i] = src[i];
  }
  return out;
}

}  // namespace hsgf::embed
