#include "embed/walks.h"

#include <algorithm>
#include <cassert>

namespace hsgf::embed {

WalkCorpus UniformWalks(const graph::HetGraph& graph, int walks_per_node,
                        int walk_length, util::Rng& rng) {
  assert(walks_per_node >= 1 && walk_length >= 1);
  WalkCorpus corpus;
  corpus.reserve(static_cast<size_t>(graph.num_nodes()) * walks_per_node);
  for (int r = 0; r < walks_per_node; ++r) {
    for (graph::NodeId start = 0; start < graph.num_nodes(); ++start) {
      if (graph.degree(start) == 0) continue;
      std::vector<graph::NodeId> walk;
      walk.reserve(walk_length);
      walk.push_back(start);
      graph::NodeId current = start;
      while (static_cast<int>(walk.size()) < walk_length) {
        auto neighbors = graph.neighbors(current);
        current = neighbors[rng.UniformInt(neighbors.size())];
        walk.push_back(current);
      }
      corpus.push_back(std::move(walk));
    }
  }
  return corpus;
}

WalkCorpus Node2VecWalks(const graph::HetGraph& graph, int walks_per_node,
                         int walk_length, double p, double q,
                         util::Rng& rng) {
  assert(walks_per_node >= 1 && walk_length >= 1 && p > 0.0 && q > 0.0);
  const double w_return = 1.0 / p;
  const double w_common = 1.0;
  const double w_far = 1.0 / q;
  const double w_max = std::max({w_return, w_common, w_far});

  WalkCorpus corpus;
  corpus.reserve(static_cast<size_t>(graph.num_nodes()) * walks_per_node);
  for (int r = 0; r < walks_per_node; ++r) {
    for (graph::NodeId start = 0; start < graph.num_nodes(); ++start) {
      if (graph.degree(start) == 0) continue;
      std::vector<graph::NodeId> walk;
      walk.reserve(walk_length);
      walk.push_back(start);
      auto first_neighbors = graph.neighbors(start);
      graph::NodeId prev = start;
      graph::NodeId current =
          first_neighbors[rng.UniformInt(first_neighbors.size())];
      walk.push_back(current);
      while (static_cast<int>(walk.size()) < walk_length) {
        auto neighbors = graph.neighbors(current);
        // Rejection sampling of the biased second-order transition: draw a
        // uniform candidate, accept with probability w(candidate) / w_max.
        graph::NodeId next = -1;
        for (;;) {
          graph::NodeId candidate =
              neighbors[rng.UniformInt(neighbors.size())];
          double weight;
          if (candidate == prev) {
            weight = w_return;
          } else if (graph.HasEdge(candidate, prev)) {
            weight = w_common;
          } else {
            weight = w_far;
          }
          if (rng.UniformReal() * w_max < weight) {
            next = candidate;
            break;
          }
        }
        walk.push_back(next);
        prev = current;
        current = next;
      }
      corpus.push_back(std::move(walk));
    }
  }
  return corpus;
}

}  // namespace hsgf::embed
