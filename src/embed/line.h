#ifndef HSGF_EMBED_LINE_H_
#define HSGF_EMBED_LINE_H_

#include <cstdint>
#include <vector>

#include "graph/het_graph.h"
#include "ml/matrix.h"

namespace hsgf::embed {

// LINE (Tang et al. 2015): large-scale information network embedding by
// edge sampling with negative sampling. First-order proximity trains
// symmetric vertex vectors on observed edges; second-order proximity trains
// vertex + context vectors. The final representation concatenates the two
// halves (each of dimensions/2), following the original paper and §4.2.2.
struct LineOptions {
  int dimensions = 128;   // total; split evenly between 1st and 2nd order
  int negatives = 5;      // K = 5
  // Edge-sample count per order; 0 selects 50 * |E| (a laptop-scale default;
  // the original uses O(billions) for web-scale graphs).
  int64_t samples = 0;
  double initial_lr = 0.025;
  double min_lr = 0.0001;
  uint64_t seed = 23;
};

ml::Matrix LineEmbeddings(const graph::HetGraph& graph,
                          const std::vector<graph::NodeId>& nodes,
                          const LineOptions& options);

}  // namespace hsgf::embed

#endif  // HSGF_EMBED_LINE_H_
